package cache

import (
	"testing"
	"testing/quick"

	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// fixedMem is a test backing store with constant latency.
type fixedMem struct {
	engine   *sim.Engine
	latency  sim.Cycle
	accesses []mem.Request
	refuse   int // refuse the first N accesses (backpressure test)
}

func (f *fixedMem) Access(req *mem.Request) bool {
	if f.refuse > 0 {
		f.refuse--
		return false
	}
	f.accesses = append(f.accesses, *req)
	if req.Done != nil {
		done := f.engine.Now() + f.latency
		d := req.Done
		f.engine.Schedule(done, func() { d(done) })
	}
	return true
}

func smallCfg() Config {
	return Config{
		Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 2,
		MSHRRead: 4, MSHRWrite: 2, MSHREvict: 2,
	}
}

func newCache(t *testing.T, cfg Config, lat sim.Cycle) (*sim.Engine, *Cache, *fixedMem, *stats.Registry) {
	t.Helper()
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	fm := &fixedMem{engine: e, latency: lat}
	c, err := New(e, cfg, fm, reg)
	if err != nil {
		t.Fatal(err)
	}
	return e, c, fm, reg
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallCfg()
	bad.LineBytes = 60
	if bad.Validate() == nil {
		t.Fatal("non-pow2 line accepted")
	}
	bad = smallCfg()
	bad.Ways = 0
	if bad.Validate() == nil {
		t.Fatal("zero ways accepted")
	}
	bad = smallCfg()
	bad.SizeBytes = 1000
	if bad.Validate() == nil {
		t.Fatal("non-divisible size accepted")
	}
	bad = smallCfg()
	bad.SizeBytes = 384 // 6 lines / 2 ways = 3 sets: not pow2
	if bad.Validate() == nil {
		t.Fatal("non-pow2 sets accepted")
	}
	bad = smallCfg()
	bad.MSHRRead = 0
	if bad.Validate() == nil {
		t.Fatal("zero MSHRs accepted")
	}
	for _, cfg := range []Config{TableIL1(), TableIL2(), TableIL3()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Table I config %s invalid: %v", cfg.Name, err)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	e, c, fm, reg := newCache(t, smallCfg(), 100)
	var missDone, hitDone sim.Cycle
	c.Access(&mem.Request{Addr: 0, Size: 8, Kind: mem.Read,
		Done: func(n sim.Cycle) { missDone = n }})
	e.Run()
	// Lookup 2 + memory 100 = 102.
	if missDone != 102 {
		t.Fatalf("miss completed at %d, want 102", missDone)
	}
	if !c.Contains(0) {
		t.Fatal("line not installed after fill")
	}
	c.Access(&mem.Request{Addr: 8, Size: 8, Kind: mem.Read,
		Done: func(n sim.Cycle) { hitDone = n }})
	e.Run()
	if hitDone != missDone+2 {
		t.Fatalf("hit completed at %d, want %d", hitDone, missDone+2)
	}
	if reg.Scope("t").Get("read_hits") != 1 || reg.Scope("t").Get("read_misses") != 1 {
		t.Fatal("hit/miss counters wrong")
	}
	if len(fm.accesses) != 1 || fm.accesses[0].Size != 64 {
		t.Fatalf("backing accesses = %v", fm.accesses)
	}
}

func TestLineCrossingPanics(t *testing.T) {
	_, c, _, _ := newCache(t, smallCfg(), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("line-crossing access did not panic")
		}
	}()
	c.Access(&mem.Request{Addr: 60, Size: 8, Kind: mem.Read})
}

func TestZeroSizePanics(t *testing.T) {
	_, c, _, _ := newCache(t, smallCfg(), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size access did not panic")
		}
	}()
	c.Access(&mem.Request{Addr: 0, Size: 0, Kind: mem.Read})
}

func TestMissCoalescing(t *testing.T) {
	e, c, fm, reg := newCache(t, smallCfg(), 100)
	done := 0
	for i := 0; i < 3; i++ {
		c.Access(&mem.Request{Addr: mem.Addr(i * 8), Size: 8, Kind: mem.Read,
			Done: func(sim.Cycle) { done++ }})
	}
	e.Run()
	if done != 3 {
		t.Fatalf("%d of 3 coalesced waiters completed", done)
	}
	if len(fm.accesses) != 1 {
		t.Fatalf("coalesced misses issued %d fills", len(fm.accesses))
	}
	if reg.Scope("t").Get("coalesced_misses") != 2 {
		t.Fatal("coalesced counter wrong")
	}
}

func TestMSHRBackpressure(t *testing.T) {
	e, c, _, reg := newCache(t, smallCfg(), 1000)
	// 4 read MSHRs: 4 distinct-line misses accepted, 5th refused.
	for i := 0; i < 4; i++ {
		if !c.Access(&mem.Request{Addr: mem.Addr(i * 64), Size: 8, Kind: mem.Read}) {
			t.Fatalf("miss %d refused", i)
		}
	}
	if c.Access(&mem.Request{Addr: 5 * 64, Size: 8, Kind: mem.Read}) {
		t.Fatal("5th miss accepted beyond MSHR pool")
	}
	if reg.Scope("t").Get("mshr_stalls") != 1 {
		t.Fatal("stall counter wrong")
	}
	e.Run()
	// After fills drain, the access must be accepted.
	if !c.Access(&mem.Request{Addr: 5 * 64, Size: 8, Kind: mem.Read}) {
		t.Fatal("miss refused after MSHRs drained")
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	e, c, fm, reg := newCache(t, smallCfg(), 10)
	// Write misses allocate.
	c.Access(&mem.Request{Addr: 0, Size: 8, Kind: mem.Write})
	e.Run()
	if !c.Contains(0) {
		t.Fatal("write miss did not allocate")
	}
	// 1024B cache, 2 ways, 64B lines → 8 sets; set 0 holds lines 0 and 512.
	// Fill both ways of set 0, then a third line evicts the dirty line 0.
	c.Access(&mem.Request{Addr: 512, Size: 8, Kind: mem.Read})
	e.Run()
	c.Access(&mem.Request{Addr: 1024, Size: 8, Kind: mem.Read})
	e.Run()
	var sawWB bool
	for _, a := range fm.accesses {
		if a.Kind == mem.Write && a.Addr == 0 && a.Size == 64 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Fatalf("dirty eviction did not write back; accesses: %+v", fm.accesses)
	}
	if reg.Scope("t").Get("writebacks") != 1 {
		t.Fatal("writeback counter wrong")
	}
	if c.Contains(0) {
		t.Fatal("evicted line still present")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	e, c, _, _ := newCache(t, smallCfg(), 10)
	// Set 0: lines 0, 512. Touch 0 again to make 512 the LRU victim.
	c.Access(&mem.Request{Addr: 0, Size: 8, Kind: mem.Read})
	e.Run()
	c.Access(&mem.Request{Addr: 512, Size: 8, Kind: mem.Read})
	e.Run()
	c.Access(&mem.Request{Addr: 0, Size: 8, Kind: mem.Read}) // refresh line 0
	e.Run()
	c.Access(&mem.Request{Addr: 1024, Size: 8, Kind: mem.Read})
	e.Run()
	if !c.Contains(0) || c.Contains(512) || !c.Contains(1024) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestBackpressureRetryToNextLevel(t *testing.T) {
	e, c, fm, _ := newCache(t, smallCfg(), 10)
	fm.refuse = 3 // next level refuses the first 3 attempts
	var doneAt sim.Cycle
	c.Access(&mem.Request{Addr: 0, Size: 8, Kind: mem.Read,
		Done: func(n sim.Cycle) { doneAt = n }})
	e.Run()
	// 2 (lookup) + 3 retry cycles + 10 = 15.
	if doneAt != 15 {
		t.Fatalf("retried fill completed at %d, want 15", doneAt)
	}
	if len(fm.accesses) != 1 {
		t.Fatal("fill duplicated under retry")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	fm := &fixedMem{engine: e, latency: 10}
	// Tiny L2 (1 set x 2 ways) forcing evictions, with an L1 child.
	l2cfg := Config{Name: "tl2", SizeBytes: 128, Ways: 2, LineBytes: 64, Latency: 2,
		MSHRRead: 4, MSHRWrite: 4, MSHREvict: 4}
	l1cfg := Config{Name: "tl1", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: 1,
		MSHRRead: 4, MSHRWrite: 4, MSHREvict: 4}
	l2, err := New(e, l2cfg, fm, reg)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := New(e, l1cfg, l2, reg)
	if err != nil {
		t.Fatal(err)
	}
	l2.SetChildren(l1)

	// Dirty line 0 in L1 (writeback cached above L2).
	l1.Access(&mem.Request{Addr: 0, Size: 8, Kind: mem.Write})
	e.Run()
	// Two more lines push line 0 out of the 2-way L2 → must back-invalidate L1.
	l1.Access(&mem.Request{Addr: 64, Size: 8, Kind: mem.Read})
	e.Run()
	l1.Access(&mem.Request{Addr: 128, Size: 8, Kind: mem.Read})
	e.Run()
	if l1.Contains(0) {
		t.Fatal("L1 still holds line after inclusive L2 eviction")
	}
	// The dirty data must have reached memory.
	var sawWB bool
	for _, a := range fm.accesses {
		if a.Kind == mem.Write && a.Addr == 0 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Fatal("dirty L1 line lost during back-invalidation")
	}
}

func TestHierarchyMissLatencyStacks(t *testing.T) {
	e := sim.NewEngine()
	reg := stats.NewRegistry()
	fm := &fixedMem{engine: e, latency: 100}
	h, err := NewHierarchy(e, TableIL1(), TableIL2(), TableIL3(), fm, reg)
	if err != nil {
		t.Fatal(err)
	}
	var cold, warm sim.Cycle
	h.Access(&mem.Request{Addr: 4096, Size: 8, Kind: mem.Read,
		Done: func(n sim.Cycle) { cold = n }})
	e.Run()
	// 2 (L1) + 4 (L2) + 6 (L3) + 100 = 112.
	if cold != 112 {
		t.Fatalf("cold miss = %d, want 112", cold)
	}
	start := e.Now()
	h.Access(&mem.Request{Addr: 4100, Size: 8, Kind: mem.Read,
		Done: func(n sim.Cycle) { warm = n }})
	e.Run()
	if warm-start != 2 {
		t.Fatalf("L1 hit latency = %d, want 2", warm-start)
	}
}

func TestStreamPrefetcherHidesLatency(t *testing.T) {
	// Sequential line-by-line misses: after training, prefetches should
	// make later accesses hit.
	cfg := smallCfg()
	cfg.SizeBytes = 4096
	cfg.Prefetch = PrefetchStream
	cfg.PrefetchDegree = 4
	cfg.MSHRRead = 8
	e, c, _, reg := newCache(t, cfg, 50)
	for i := 0; i < 16; i++ {
		addr := mem.Addr(i * 64)
		var retry func()
		retry = func() {
			if !c.Access(&mem.Request{Addr: addr, Size: 8, Kind: mem.Read}) {
				e.After(1, retry)
			}
		}
		retry()
		e.Run()
	}
	sc := reg.Scope("t")
	if sc.Get("prefetches_issued") == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	if sc.Get("read_hits") == 0 {
		t.Fatal("no prefetch hits on a pure sequential stream")
	}
}

func TestStridePrefetcherDetectsStride(t *testing.T) {
	p := newStridePrefetcher(64, 2)
	var got []mem.Addr
	// Stride of 128 within one region.
	for _, a := range []mem.Addr{0, 128, 256, 384} {
		got = p.observe(nil, a, true)
	}
	if len(got) != 2 || got[0] != 512 || got[1] != 640 {
		t.Fatalf("stride prefetcher proposed %v", got)
	}
	// A stride change resets confidence.
	if out := p.observe(nil, 400, true); out != nil {
		t.Fatalf("untrained stride fired: %v", out)
	}
}

func TestStridePrefetcherIgnoresZeroStride(t *testing.T) {
	p := newStridePrefetcher(64, 2)
	p.observe(nil, 0, true)
	for i := 0; i < 4; i++ {
		if out := p.observe(nil, 0, true); out != nil {
			t.Fatalf("zero stride proposed %v", out)
		}
	}
}

func TestStreamPrefetcherResetsOnNonSequential(t *testing.T) {
	p := newStreamPrefetcher(64, 2)
	p.observe(nil, 0, true)
	if out := p.observe(nil, 64, true); len(out) != 2 {
		t.Fatalf("sequential stream proposed %v", out)
	}
	if out := p.observe(nil, 1024, false); out != nil {
		t.Fatal("hit observation trained the stream prefetcher")
	}
	p.observe(nil, 320, true) // jump backward-ish: breaks the stream
	if out := p.observe(nil, 256, true); out != nil {
		t.Fatalf("broken stream still proposed %v", out)
	}
}

// Property: any access pattern completes all Done callbacks exactly once,
// and hits+misses equals the number of reads.
func TestAllAccessesCompleteProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e, c, _, reg := newCache(t, smallCfg(), 20)
		want := 0
		done := 0
		for _, r := range raw {
			addr := mem.Addr(r) * 8 // 8-byte aligned, within-line
			req := &mem.Request{Addr: addr, Size: 8, Kind: mem.Read,
				Done: func(sim.Cycle) { done++ }}
			var retry func()
			retry = func() {
				if !c.Access(req) {
					e.After(1, retry)
				}
			}
			retry()
			want++
			e.Run()
		}
		sc := reg.Scope("t")
		return done == want &&
			sc.Get("read_hits")+sc.Get("read_misses") == uint64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchKindString(t *testing.T) {
	if PrefetchNone.String() != "none" || PrefetchStride.String() != "stride" || PrefetchStream.String() != "stream" {
		t.Fatal("prefetch kind strings wrong")
	}
}

func TestConfigAccessor(t *testing.T) {
	_, c, _, _ := newCache(t, smallCfg(), 10)
	if c.Config().Name != "t" {
		t.Fatal("Config accessor wrong")
	}
	if c.PendingMisses() != 0 {
		t.Fatal("fresh cache has pending misses")
	}
}
