package cache

import (
	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// Hierarchy is the three-level data-cache stack of the x86 baseline.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	L3 *Cache
}

// TableIL1 returns the paper's L1 data cache configuration:
// 32 KB, 8-way, 2-cycle, 64 B lines, stride prefetch, MSHR 10/10/10.
func TableIL1() Config {
	return Config{
		Name: "l1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 2,
		MSHRRead: 10, MSHRWrite: 10, MSHREvict: 10,
		Prefetch: PrefetchStride, PrefetchDegree: 2,
	}
}

// TableIL2 returns the paper's private L2 configuration:
// 256 KB, 8-way, 4-cycle, stream prefetch, MSHR 20/20/10.
func TableIL2() Config {
	return Config{
		Name: "l2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, Latency: 4,
		MSHRRead: 20, MSHRWrite: 20, MSHREvict: 10,
		Prefetch: PrefetchStream, PrefetchDegree: 4,
	}
}

// TableIL3 returns one bank's share of the paper's shared L3: the paper
// lists 2.5 MB per bank; we round to 2 MB so the set count stays a power
// of two (2.5 MB/16-way would need 2560 sets). 16-way, 6-cycle, MSHR
// 64/64/64, inclusive.
//
// The scan workloads stream far beyond any L3 capacity, so modelling the
// single active core's bank at 2 MB instead of 2.5 MB changes nothing
// observable in the paper's experiments.
func TableIL3() Config {
	return Config{
		Name: "l3", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, Latency: 6,
		MSHRRead: 64, MSHRWrite: 64, MSHREvict: 64,
		Prefetch: PrefetchNone,
	}
}

// NewHierarchy wires L1 → L2 → L3 → memory and registers the inclusive
// back-invalidation chain.
func NewHierarchy(engine *sim.Engine, l1, l2, l3 Config, memory mem.Port, reg *stats.Registry) (*Hierarchy, error) {
	cl3, err := New(engine, l3, memory, reg)
	if err != nil {
		return nil, err
	}
	cl2, err := New(engine, l2, cl3, reg)
	if err != nil {
		return nil, err
	}
	cl1, err := New(engine, l1, cl2, reg)
	if err != nil {
		return nil, err
	}
	cl3.SetChildren(cl2)
	cl2.SetChildren(cl1)
	return &Hierarchy{L1: cl1, L2: cl2, L3: cl3}, nil
}

// Reset empties all three levels (see Cache.Reset).
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.L3.Reset()
}

// Access enters the hierarchy at L1.
func (h *Hierarchy) Access(req *mem.Request) bool { return h.L1.Access(req) }

var _ mem.Port = (*Hierarchy)(nil)
