// Package cache implements the processor-side cache hierarchy of the x86
// baseline: set-associative write-back write-allocate caches with LRU
// replacement, miss-status holding registers (MSHRs) that bound memory
// level parallelism, an inclusive last-level cache with back-invalidation,
// and the Table I prefetchers (stride at L1, stream at L2).
//
// Caches are timing-only: no data is stored. Functional query results are
// computed by the database layer; the caches decide *when* accesses
// complete.
package cache

import (
	"fmt"

	"github.com/hipe-sim/hipe/internal/mem"
	"github.com/hipe-sim/hipe/internal/sim"
	"github.com/hipe-sim/hipe/internal/stats"
)

// PrefetchKind selects the prefetcher attached to a cache.
type PrefetchKind uint8

const (
	// PrefetchNone disables prefetching.
	PrefetchNone PrefetchKind = iota
	// PrefetchStride is a per-region stride detector (L1 in Table I).
	PrefetchStride
	// PrefetchStream is a sequential stream detector (L2 in Table I).
	PrefetchStream
)

// String implements fmt.Stringer.
func (p PrefetchKind) String() string {
	switch p {
	case PrefetchStride:
		return "stride"
	case PrefetchStream:
		return "stream"
	default:
		return "none"
	}
}

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes uint64
	Ways      uint32
	LineBytes uint32
	Latency   sim.Cycle // lookup/hit latency

	// MSHR pools per Table I: read misses (demand+prefetch), write
	// misses, and evictions (writebacks in flight).
	MSHRRead  int
	MSHRWrite int
	MSHREvict int

	Prefetch PrefetchKind
	// PrefetchDegree is how many lines ahead a trained stream/stride
	// entry fetches.
	PrefetchDegree uint32
}

// Validate rejects impossible cache shapes.
func (c Config) Validate() error {
	if c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Ways == 0 {
		return fmt.Errorf("cache %s: zero ways", c.Name)
	}
	lines := c.SizeBytes / uint64(c.LineBytes)
	if lines == 0 || lines%uint64(c.Ways) != 0 {
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / uint64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: %d sets not a power of two", c.Name, sets)
	}
	if c.MSHRRead <= 0 {
		return fmt.Errorf("cache %s: MSHRRead must be positive", c.Name)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// prefetched marks a line installed by a prefetch fill that no demand
	// access has touched yet; the first demand hit counts it useful.
	prefetched bool
	lru        uint64
}

type waiter struct {
	markDirty bool
	done      func(now sim.Cycle)
}

// mshr is one miss-status holding register. MSHRs are pooled: a miss
// draws one from the cache's free list and the fill's arrival returns
// it, so steady-state miss handling allocates nothing. The embedded
// fill request's Done callback is pre-bound once, when the mshr is
// first constructed.
type mshr struct {
	c        *Cache
	lineAddr mem.Addr
	waiters  []waiter
	isWrite  bool // allocated from the write pool
	prefetch bool

	fill   mem.Request
	fillFn func(now sim.Cycle) // pre-bound: fill arrived
}

// OnEvent implements sim.Handler: the mshr retries its fill against the
// next level until accepted (tag unused — the mshr has one event kind).
func (m *mshr) OnEvent(now sim.Cycle, _ uint64) {
	if !m.c.next.Access(&m.fill) {
		m.c.engine.AfterEvent(1, m, 0)
	}
}

// wbOp is one pooled in-flight writeback (dirty eviction).
type wbOp struct {
	c      *Cache
	req    mem.Request
	doneFn func(now sim.Cycle) // pre-bound: write drained, release op
}

// OnEvent implements sim.Handler: retry the writeback under
// backpressure.
func (w *wbOp) OnEvent(now sim.Cycle, _ uint64) {
	if !w.c.next.Access(&w.req) {
		w.c.engine.AfterEvent(1, w, 0)
	}
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg    Config
	engine *sim.Engine
	next   mem.Port

	sets     [][]line
	setMask  uint64
	lineMask uint64
	lruClock uint64

	pending    map[mem.Addr]*mshr
	mshrFree   []*mshr
	wbFree     []*wbOp
	readInUse  int
	writeInUse int
	evictInUse int

	pf    prefetcher
	pfBuf []mem.Addr // reused scratch for prefetcher proposals

	children []*Cache // for inclusive back-invalidation

	hits        *stats.Counter
	misses      *stats.Counter
	writeHits   *stats.Counter
	writeMisses *stats.Counter
	evictions   *stats.Counter
	writebacks  *stats.Counter
	prefetches  *stats.Counter
	pfUseful    *stats.Counter
	pfDropped   *stats.Counter
	mshrStalls  *stats.Counter
	coalesced   *stats.Counter
	backInvals  *stats.Counter
}

// New builds a cache level in front of next.
func New(engine *sim.Engine, cfg Config, next mem.Port, reg *stats.Registry) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / uint64(cfg.LineBytes) / uint64(cfg.Ways)
	c := &Cache{
		cfg:      cfg,
		engine:   engine,
		next:     next,
		sets:     make([][]line, nsets),
		setMask:  nsets - 1,
		lineMask: ^uint64(cfg.LineBytes - 1),
		pending:  make(map[mem.Addr]*mshr),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	switch cfg.Prefetch {
	case PrefetchStride:
		c.pf = newStridePrefetcher(cfg.LineBytes, cfg.PrefetchDegree)
	case PrefetchStream:
		c.pf = newStreamPrefetcher(cfg.LineBytes, cfg.PrefetchDegree)
	}
	sc := reg.Scope(cfg.Name)
	c.hits = sc.Counter("read_hits")
	c.misses = sc.Counter("read_misses")
	c.writeHits = sc.Counter("write_hits")
	c.writeMisses = sc.Counter("write_misses")
	c.evictions = sc.Counter("evictions")
	c.writebacks = sc.Counter("writebacks")
	c.prefetches = sc.Counter("prefetches_issued")
	c.pfUseful = sc.Counter("prefetches_useful")
	c.pfDropped = sc.Counter("prefetches_dropped")
	c.mshrStalls = sc.Counter("mshr_stalls")
	c.coalesced = sc.Counter("coalesced_misses")
	c.backInvals = sc.Counter("back_invalidations")
	return c, nil
}

// SetChildren registers the upper-level caches this (inclusive) cache must
// back-invalidate on eviction.
func (c *Cache) SetChildren(children ...*Cache) { c.children = children }

// Reset empties the cache to its post-New state: all lines invalid, LRU
// clock restarted, no outstanding misses, prefetcher untrained. Pooled
// MSHRs and writeback ops keep their capacity; any that were in flight
// are abandoned with the engine's event queue.
func (c *Cache) Reset() {
	for i := range c.sets {
		set := c.sets[i]
		for j := range set {
			set[j] = line{}
		}
	}
	c.lruClock = 0
	for la, m := range c.pending {
		m.waiters = m.waiters[:0]
		c.mshrFree = append(c.mshrFree, m)
		delete(c.pending, la)
	}
	c.readInUse, c.writeInUse, c.evictInUse = 0, 0, 0
	if c.pf != nil {
		c.pf.reset()
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) lineAddr(a mem.Addr) mem.Addr { return mem.Addr(uint64(a) & c.lineMask) }

func (c *Cache) setIndex(la mem.Addr) uint64 {
	return (uint64(la) / uint64(c.cfg.LineBytes)) & c.setMask
}

func (c *Cache) lookup(la mem.Addr) *line {
	set := c.sets[c.setIndex(la)]
	tag := uint64(la)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Access implements mem.Port. A request must not cross a line boundary.
// Returns false when a needed MSHR is unavailable; the caller must retry.
func (c *Cache) Access(req *mem.Request) bool {
	if req.Size == 0 {
		panic(fmt.Sprintf("cache %s: zero-size access", c.cfg.Name))
	}
	la := c.lineAddr(req.Addr)
	if c.lineAddr(req.Addr+mem.Addr(req.Size-1)) != la {
		panic(fmt.Sprintf("cache %s: access %x+%d crosses a line", c.cfg.Name, req.Addr, req.Size))
	}

	if ln := c.lookup(la); ln != nil {
		c.lruClock++
		ln.lru = c.lruClock
		if ln.prefetched {
			// First demand touch of a prefetched line: the prefetch paid.
			ln.prefetched = false
			c.pfUseful.Inc()
		}
		if req.Kind == mem.Write {
			ln.dirty = true
			c.writeHits.Inc()
		} else {
			c.hits.Inc()
		}
		if req.Done != nil {
			c.engine.ScheduleCall(c.engine.Now()+c.cfg.Latency, req.Done)
		}
		c.train(req.Addr, false)
		return true
	}

	// Miss. Coalesce into an existing MSHR if one is outstanding.
	if m, ok := c.pending[la]; ok {
		if m.prefetch {
			// Demand arrived while the prefetch fill was still in flight:
			// the prefetch hid part of the miss latency. Count it useful
			// once and let the fill install a plain demand line.
			m.prefetch = false
			c.pfUseful.Inc()
		}
		m.waiters = append(m.waiters, waiter{markDirty: req.Kind == mem.Write, done: req.Done})
		c.coalesced.Inc()
		if req.Kind == mem.Write {
			c.writeMisses.Inc()
		} else {
			c.misses.Inc()
		}
		return true
	}

	// Allocate an MSHR from the appropriate pool.
	if req.Kind == mem.Write {
		if c.writeInUse >= c.cfg.MSHRWrite {
			c.mshrStalls.Inc()
			return false
		}
		c.writeInUse++
		c.writeMisses.Inc()
	} else {
		if c.readInUse >= c.cfg.MSHRRead {
			c.mshrStalls.Inc()
			return false
		}
		c.readInUse++
		c.misses.Inc()
	}

	m := c.newMSHR(la)
	m.isWrite = req.Kind == mem.Write
	m.waiters = append(m.waiters, waiter{markDirty: req.Kind == mem.Write, done: req.Done})
	c.pending[la] = m
	c.issueFill(m)
	c.train(req.Addr, true)
	return true
}

var _ mem.Port = (*Cache)(nil)

// newMSHR draws a pooled MSHR, resetting it for line la.
func (c *Cache) newMSHR(la mem.Addr) *mshr {
	var m *mshr
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
	} else {
		m = &mshr{c: c}
		m.fillFn = func(now sim.Cycle) { m.c.fillArrived(m) }
	}
	m.lineAddr = la
	m.waiters = m.waiters[:0]
	m.isWrite = false
	m.prefetch = false
	return m
}

// issueFill sends the line fill to the next level after the lookup
// latency, retrying each cycle if the next level exerts backpressure.
func (c *Cache) issueFill(m *mshr) {
	m.fill = mem.Request{
		Addr: m.lineAddr,
		Size: c.cfg.LineBytes,
		Kind: mem.Read,
		Done: m.fillFn,
	}
	c.engine.AfterEvent(c.cfg.Latency, m, 0)
}

// fillArrived installs the line, releases the MSHR's waiters, and
// returns it to the pool.
func (c *Cache) fillArrived(m *mshr) {
	c.install(m.lineAddr, false)
	ln := c.lookup(m.lineAddr)
	if ln != nil && m.prefetch {
		ln.prefetched = true
	}
	now := c.engine.Now()
	for _, w := range m.waiters {
		if w.markDirty && ln != nil {
			ln.dirty = true
		}
		if w.done != nil {
			w.done(now)
		}
	}
	delete(c.pending, m.lineAddr)
	if m.isWrite {
		c.writeInUse--
	} else {
		c.readInUse--
	}
	m.waiters = m.waiters[:0]
	c.mshrFree = append(c.mshrFree, m)
}

// install places a line, evicting the LRU victim (with writeback and
// back-invalidation of children if this cache is inclusive).
func (c *Cache) install(la mem.Addr, dirty bool) {
	set := c.sets[c.setIndex(la)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	// Evict the victim.
	{
		v := &set[victim]
		c.evictions.Inc()
		vDirty := v.dirty
		for _, child := range c.children {
			if child.invalidate(mem.Addr(v.tag)) {
				vDirty = true
			}
			c.backInvals.Inc()
		}
		if vDirty {
			c.writeback(mem.Addr(v.tag))
		}
	}
place:
	c.lruClock++
	set[victim] = line{tag: uint64(la), valid: true, dirty: dirty, lru: c.lruClock}
}

// writeback issues a dirty line to the next level, retrying on pressure.
// Writeback state is pooled like the MSHRs.
func (c *Cache) writeback(la mem.Addr) {
	c.writebacks.Inc()
	c.evictInUse++
	var w *wbOp
	if n := len(c.wbFree); n > 0 {
		w = c.wbFree[n-1]
		c.wbFree = c.wbFree[:n-1]
	} else {
		w = &wbOp{c: c}
		w.doneFn = func(now sim.Cycle) {
			w.c.evictInUse--
			w.c.wbFree = append(w.c.wbFree, w)
		}
	}
	w.req = mem.Request{
		Addr: la,
		Size: c.cfg.LineBytes,
		Kind: mem.Write,
		Done: w.doneFn,
	}
	// First attempt fires synchronously, as before; retries go through
	// the event queue.
	if !c.next.Access(&w.req) {
		c.engine.AfterEvent(1, w, 0)
	}
}

// invalidate removes a line (if present), reporting whether it was dirty.
// Used for inclusive back-invalidation from the level below.
func (c *Cache) invalidate(la mem.Addr) bool {
	la = c.lineAddr(la)
	set := c.sets[c.setIndex(la)]
	tag := uint64(la)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			dirty := set[i].dirty
			set[i] = line{}
			// Recurse into our own children (L3 → L2 → L1).
			for _, child := range c.children {
				if child.invalidate(la) {
					dirty = true
				}
			}
			return dirty
		}
	}
	return false
}

// Contains reports whether the line holding addr is present (for tests).
func (c *Cache) Contains(addr mem.Addr) bool { return c.lookup(c.lineAddr(addr)) != nil }

// PendingMisses reports the number of outstanding fills (for tests).
func (c *Cache) PendingMisses() int { return len(c.pending) }

// train feeds the prefetcher and issues resulting prefetches if MSHRs are
// free (prefetches never stall demand traffic: dropped when full).
func (c *Cache) train(addr mem.Addr, miss bool) {
	if c.pf == nil {
		return
	}
	c.pfBuf = c.pf.observe(c.pfBuf[:0], addr, miss)
	for _, target := range c.pfBuf {
		la := c.lineAddr(target)
		if c.lookup(la) != nil {
			continue
		}
		if _, busy := c.pending[la]; busy {
			continue
		}
		if c.readInUse >= c.cfg.MSHRRead {
			c.pfDropped.Inc()
			continue
		}
		c.readInUse++
		c.prefetches.Inc()
		m := c.newMSHR(la)
		m.prefetch = true
		c.pending[la] = m
		c.issueFill(m)
	}
}
