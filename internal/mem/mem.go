// Package mem defines the memory protocol shared by every level of the
// simulated machine: physical addresses, access requests, and the HMC
// address interleaving that decides which vault, bank and row a physical
// address lives in.
package mem

import (
	"fmt"
	"math/bits"

	"github.com/hipe-sim/hipe/internal/sim"
)

// Addr is a physical byte address inside the simulated HMC.
type Addr uint64

// Kind distinguishes the direction of a memory access.
type Kind uint8

const (
	// Read moves data from DRAM toward the requester.
	Read Kind = iota
	// Write moves data from the requester into DRAM.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Request is one memory access as seen by the DRAM subsystem. A request
// must not cross a DRAM row boundary; use Geometry.Split to break larger
// or misaligned accesses into row-sized pieces.
type Request struct {
	Addr Addr
	Size uint32
	Kind Kind
	// Done, if non-nil, is invoked exactly once when the access completes
	// (data returned for reads, write committed to the row for writes).
	Done func(now sim.Cycle)
}

// Location is the decomposition of a physical address into HMC topology
// coordinates.
type Location struct {
	Vault uint32
	Bank  uint32
	Row   uint64
	Col   uint32 // byte offset within the row buffer
}

// Geometry describes the HMC structure used for address interleaving.
// Addresses interleave low-order first across vaults, then banks, so that
// a sequential stream spreads 256 B chunks round-robin over all vaults —
// the layout the HMC 2.1 specification mandates for maximum bandwidth and
// the one the paper's streaming results rely on.
type Geometry struct {
	Vaults   uint32 // number of vaults (32 in HMC 2.1)
	Banks    uint32 // DRAM banks per vault (8)
	RowBytes uint32 // row buffer size in bytes (256)
	Total    uint64 // total capacity in bytes (8 GiB)
}

// HMC21 returns the geometry of the paper's HMC v2.1 configuration.
func HMC21() Geometry {
	return Geometry{Vaults: 32, Banks: 8, RowBytes: 256, Total: 8 << 30}
}

// Validate checks that all fields are powers of two and consistent.
func (g Geometry) Validate() error {
	switch {
	case g.Vaults == 0 || g.Vaults&(g.Vaults-1) != 0:
		return fmt.Errorf("mem: vaults %d not a power of two", g.Vaults)
	case g.Banks == 0 || g.Banks&(g.Banks-1) != 0:
		return fmt.Errorf("mem: banks %d not a power of two", g.Banks)
	case g.RowBytes == 0 || g.RowBytes&(g.RowBytes-1) != 0:
		return fmt.Errorf("mem: row bytes %d not a power of two", g.RowBytes)
	case g.Total == 0 || g.Total&(g.Total-1) != 0:
		return fmt.Errorf("mem: total %d not a power of two", g.Total)
	case g.Total < uint64(g.Vaults)*uint64(g.Banks)*uint64(g.RowBytes):
		return fmt.Errorf("mem: total %d smaller than one row per bank", g.Total)
	}
	return nil
}

// RowsPerBank reports the number of rows each bank stores.
func (g Geometry) RowsPerBank() uint64 {
	return g.Total / (uint64(g.Vaults) * uint64(g.Banks) * uint64(g.RowBytes))
}

func log2u32(v uint32) uint { return uint(bits.TrailingZeros32(v)) }

// Decompose maps a physical address to its vault/bank/row/column.
func (g Geometry) Decompose(a Addr) Location {
	colBits := log2u32(g.RowBytes)
	vaultBits := log2u32(g.Vaults)
	bankBits := log2u32(g.Banks)
	x := uint64(a)
	col := uint32(x & uint64(g.RowBytes-1))
	x >>= colBits
	vault := uint32(x & uint64(g.Vaults-1))
	x >>= vaultBits
	bank := uint32(x & uint64(g.Banks-1))
	x >>= bankBits
	return Location{Vault: vault, Bank: bank, Row: x, Col: col}
}

// Compose is the inverse of Decompose.
func (g Geometry) Compose(l Location) Addr {
	colBits := log2u32(g.RowBytes)
	vaultBits := log2u32(g.Vaults)
	bankBits := log2u32(g.Banks)
	x := l.Row
	x = x<<bankBits | uint64(l.Bank)
	x = x<<vaultBits | uint64(l.Vault)
	x = x<<colBits | uint64(l.Col)
	return Addr(x)
}

// RowBase returns the address of the first byte of the row containing a.
func (g Geometry) RowBase(a Addr) Addr {
	return a &^ Addr(g.RowBytes-1)
}

// Chunk is one row-contained piece of a larger access.
type Chunk struct {
	Addr Addr
	Size uint32
}

// Split breaks [addr, addr+size) into chunks that each stay within a
// single DRAM row. Sequential chunks land in consecutive vaults thanks to
// the low-order vault interleave.
func (g Geometry) Split(addr Addr, size uint32) []Chunk {
	if size == 0 {
		return nil
	}
	var out []Chunk
	for size > 0 {
		rowEnd := g.RowBase(addr) + Addr(g.RowBytes)
		n := uint32(rowEnd - addr)
		if n > size {
			n = size
		}
		out = append(out, Chunk{Addr: addr, Size: n})
		addr += Addr(n)
		size -= n
	}
	return out
}

// Port is anything that accepts memory requests: a cache level, the HMC
// link controller, or a vault controller.
type Port interface {
	// Access submits a request. The implementation may process it after an
	// arbitrary delay; req.Done fires on completion. Access reports false
	// if the component cannot accept the request this cycle (full queue),
	// in which case the caller must retry later and Done will not fire.
	Access(req *Request) bool
}

// FuncPort adapts a function to the Port interface (useful in tests).
type FuncPort func(req *Request) bool

// Access implements Port.
func (f FuncPort) Access(req *Request) bool { return f(req) }
