package mem

import (
	"testing"
	"testing/quick"
)

func TestHMC21Geometry(t *testing.T) {
	g := HMC21()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.RowsPerBank() != (8<<30)/(32*8*256) {
		t.Fatalf("rows per bank = %d", g.RowsPerBank())
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []Geometry{
		{Vaults: 0, Banks: 8, RowBytes: 256, Total: 1 << 30},
		{Vaults: 3, Banks: 8, RowBytes: 256, Total: 1 << 30},
		{Vaults: 32, Banks: 7, RowBytes: 256, Total: 1 << 30},
		{Vaults: 32, Banks: 8, RowBytes: 200, Total: 1 << 30},
		{Vaults: 32, Banks: 8, RowBytes: 256, Total: 3 << 20},
		{Vaults: 32, Banks: 8, RowBytes: 256, Total: 1 << 10}, // too small
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
}

func TestDecomposeKnownValues(t *testing.T) {
	g := HMC21()
	// Address 0: everything zero.
	l := g.Decompose(0)
	if l != (Location{}) {
		t.Fatalf("Decompose(0) = %+v", l)
	}
	// One row buffer later: next vault.
	l = g.Decompose(256)
	if l.Vault != 1 || l.Bank != 0 || l.Row != 0 || l.Col != 0 {
		t.Fatalf("Decompose(256) = %+v", l)
	}
	// 32 rows later: wraps vaults, increments bank.
	l = g.Decompose(256 * 32)
	if l.Vault != 0 || l.Bank != 1 || l.Row != 0 {
		t.Fatalf("Decompose(8192) = %+v", l)
	}
	// 32*8 rows later: first row increment.
	l = g.Decompose(256 * 32 * 8)
	if l.Vault != 0 || l.Bank != 0 || l.Row != 1 {
		t.Fatalf("Decompose(65536) = %+v", l)
	}
	// Column offset preserved.
	l = g.Decompose(256 + 17)
	if l.Vault != 1 || l.Col != 17 {
		t.Fatalf("Decompose(273) = %+v", l)
	}
}

func TestSequentialStreamInterleavesVaults(t *testing.T) {
	g := HMC21()
	seen := make(map[uint32]bool)
	for i := 0; i < 32; i++ {
		l := g.Decompose(Addr(i * 256))
		if seen[l.Vault] {
			t.Fatalf("vault %d hit twice within one vault sweep", l.Vault)
		}
		seen[l.Vault] = true
	}
	if len(seen) != 32 {
		t.Fatalf("sequential 8 KiB touched %d vaults, want 32", len(seen))
	}
}

// Property: Compose is the inverse of Decompose for in-range addresses.
func TestComposeDecomposeRoundTrip(t *testing.T) {
	g := HMC21()
	f := func(raw uint64) bool {
		a := Addr(raw % g.Total)
		return g.Compose(g.Decompose(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRowBase(t *testing.T) {
	g := HMC21()
	if g.RowBase(0) != 0 || g.RowBase(255) != 0 || g.RowBase(256) != 256 {
		t.Fatal("RowBase misaligned")
	}
	if g.RowBase(1000) != 768 {
		t.Fatalf("RowBase(1000) = %d", g.RowBase(1000))
	}
}

func TestSplit(t *testing.T) {
	g := HMC21()
	if got := g.Split(0, 0); got != nil {
		t.Fatalf("Split size 0 = %v", got)
	}
	// Fully within a row.
	cs := g.Split(10, 100)
	if len(cs) != 1 || cs[0] != (Chunk{Addr: 10, Size: 100}) {
		t.Fatalf("Split(10,100) = %v", cs)
	}
	// Exactly one row.
	cs = g.Split(256, 256)
	if len(cs) != 1 || cs[0] != (Chunk{Addr: 256, Size: 256}) {
		t.Fatalf("Split(256,256) = %v", cs)
	}
	// Straddling a boundary.
	cs = g.Split(200, 100)
	if len(cs) != 2 || cs[0] != (Chunk{Addr: 200, Size: 56}) || cs[1] != (Chunk{Addr: 256, Size: 44}) {
		t.Fatalf("Split(200,100) = %v", cs)
	}
	// Multi-row.
	cs = g.Split(0, 1024)
	if len(cs) != 4 {
		t.Fatalf("Split(0,1024) = %v", cs)
	}
	for i, c := range cs {
		if c.Size != 256 || c.Addr != Addr(i*256) {
			t.Fatalf("chunk %d = %+v", i, c)
		}
	}
}

// Property: Split chunks are contiguous, within-row, and cover the range.
func TestSplitProperty(t *testing.T) {
	g := HMC21()
	f := func(rawAddr uint32, rawSize uint16) bool {
		addr := Addr(rawAddr)
		size := uint32(rawSize)
		cs := g.Split(addr, size)
		var covered uint32
		next := addr
		for _, c := range cs {
			if c.Addr != next || c.Size == 0 {
				return false
			}
			if g.RowBase(c.Addr) != g.RowBase(c.Addr+Addr(c.Size-1)) {
				return false // chunk crosses a row
			}
			next += Addr(c.Size)
			covered += c.Size
		}
		return covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestFuncPort(t *testing.T) {
	called := false
	p := FuncPort(func(req *Request) bool { called = true; return true })
	if !p.Access(&Request{}) || !called {
		t.Fatal("FuncPort did not dispatch")
	}
}
