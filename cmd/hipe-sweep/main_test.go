package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runBinary executes this command via `go run .` — flag validation runs
// before any simulation, so usage-error cases return immediately.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestQ1CutsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero cutoff", []string{"-q1cuts", "0"}, "outside the generated"},
		{"negative cutoff", []string{"-q1cuts", "-5"}, "outside the generated"},
		{"cutoff past range", []string{"-q1cuts", "9999"}, "outside the generated"},
		{"garbage cutoff", []string{"-q1cuts", "abc"}, "bad -q1cuts entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			// `go run` reports the child's failure as its own exit 1 and
			// appends the child's "exit status 2" line.
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

func TestQ1SweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	code, out := runBinary(t,
		"-archs", "hipe", "-opsizes", "256", "-unrolls", "8",
		"-tuples", "1024", "-q1cuts", "2436", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	if !strings.Contains(out, "/q1") {
		t.Fatalf("summary lacks a Q01 cell:\n%s", out)
	}
}

// TestArchValidationListsRegistry: an unknown -archs entry fails with a
// usage message that lists the registered backends (not a hard-coded
// string), including the planner's "auto".
func TestArchValidationListsRegistry(t *testing.T) {
	code, out := runBinary(t, "-archs", "riscv")
	if code == 0 {
		t.Fatalf("unknown arch exited 0\n%s", out)
	}
	for _, want := range []string{`unknown arch "riscv"`, "x86", "hmc", "hive", "hipe", "auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output %q does not mention %q", out, want)
		}
	}
}

// TestExecFlagValidation pins the CLI-level exec-mode refusals: unknown
// modes list the registry, and estimate mode rejects the outputs it
// cannot produce before anything runs.
func TestExecFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown mode", []string{"-exec", "psychic"}, `unknown exec mode "psychic"`},
		{"mode choices listed", []string{"-exec", "psychic"}, "exact, estimate"},
		{"estimate with counters", []string{"-exec", "estimate", "-counters"}, "cannot capture machine counters"},
		{"estimate with shards", []string{"-exec", "estimate", "-cell-shards", "4"}, "no shard machines"},
		{"negative shards", []string{"-cell-shards", "-2"}, "must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestGroupedUsage pins the subsystem grouping of the help text: every
// group header prints, and no flag has fallen out of the groups into
// the trailing "ungrouped" section.
func TestGroupedUsage(t *testing.T) {
	// flag's ExitOnError treats -h as success, so only the output matters.
	_, out := runBinary(t, "-h")
	for _, want := range []string{"grid axes:", "workload:", "execution:", "export:", "profiling:", "-exec", "-cell-shards"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ungrouped") {
		t.Errorf("a flag escaped the subsystem groups:\n%s", out)
	}
	if strings.Contains(out, "unregistered flag") {
		t.Errorf("a group lists a flag that is not registered:\n%s", out)
	}
}

// TestEstimateSweepRuns: -exec estimate produces the exec_mode CSV
// column and runs the whole grid through the cost model.
func TestEstimateSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	code, out := runBinary(t,
		"-archs", "hipe,auto", "-opsizes", "256", "-unrolls", "32",
		"-tuples", "1024", "-quiet", "-exec", "estimate", "-csv", "-")
	if code != 0 {
		t.Fatalf("estimate sweep failed (%d)\n%s", code, out)
	}
	if !strings.Contains(out, "exec_mode") || !strings.Contains(out, "estimate") {
		t.Fatalf("estimate sweep CSV lacks the exec_mode marker\n%s", out)
	}
}

// TestShardedSweepRuns: -cell-shards splits each cell into parallel
// shard simulations and records the shard count in the export.
func TestShardedSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	code, out := runBinary(t,
		"-archs", "hipe", "-opsizes", "256", "-unrolls", "32",
		"-tuples", "1024", "-quiet", "-cell-shards", "4", "-csv", "-")
	if code != 0 {
		t.Fatalf("sharded sweep failed (%d)\n%s", code, out)
	}
	if !strings.Contains(out, "shards") {
		t.Fatalf("sharded sweep CSV lacks the shards column\n%s", out)
	}
}

// TestAutoArchSweepRuns: -archs auto produces planner-routed cells with
// routing columns in the CSV export.
func TestAutoArchSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	code, out := runBinary(t,
		"-archs", "auto", "-opsizes", "256", "-unrolls", "32",
		"-tuples", "1024", "-quiet", "-csv", "-")
	if code != 0 {
		t.Fatalf("auto sweep failed (%d)\n%s", code, out)
	}
	if !strings.Contains(out, "routed_arch") || !strings.Contains(out, "est_cycles") {
		t.Fatalf("auto sweep CSV lacks routing columns\n%s", out)
	}
	if !strings.Contains(out, "auto,") {
		t.Fatalf("auto sweep CSV lacks the auto arch marker\n%s", out)
	}
}
