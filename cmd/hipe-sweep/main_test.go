package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runBinary executes this command via `go run .` — flag validation runs
// before any simulation, so usage-error cases return immediately.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestQ1CutsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero cutoff", []string{"-q1cuts", "0"}, "outside the generated"},
		{"negative cutoff", []string{"-q1cuts", "-5"}, "outside the generated"},
		{"cutoff past range", []string{"-q1cuts", "9999"}, "outside the generated"},
		{"garbage cutoff", []string{"-q1cuts", "abc"}, "bad -q1cuts entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			// `go run` reports the child's failure as its own exit 1 and
			// appends the child's "exit status 2" line.
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

func TestQ1SweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	code, out := runBinary(t,
		"-archs", "hipe", "-opsizes", "256", "-unrolls", "8",
		"-tuples", "1024", "-q1cuts", "2436", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	if !strings.Contains(out, "/q1") {
		t.Fatalf("summary lacks a Q01 cell:\n%s", out)
	}
}

// TestArchValidationListsRegistry: an unknown -archs entry fails with a
// usage message that lists the registered backends (not a hard-coded
// string), including the planner's "auto".
func TestArchValidationListsRegistry(t *testing.T) {
	code, out := runBinary(t, "-archs", "riscv")
	if code == 0 {
		t.Fatalf("unknown arch exited 0\n%s", out)
	}
	for _, want := range []string{`unknown arch "riscv"`, "x86", "hmc", "hive", "hipe", "auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output %q does not mention %q", out, want)
		}
	}
}

// TestAutoArchSweepRuns: -archs auto produces planner-routed cells with
// routing columns in the CSV export.
func TestAutoArchSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	code, out := runBinary(t,
		"-archs", "auto", "-opsizes", "256", "-unrolls", "32",
		"-tuples", "1024", "-quiet", "-csv", "-")
	if code != 0 {
		t.Fatalf("auto sweep failed (%d)\n%s", code, out)
	}
	if !strings.Contains(out, "routed_arch") || !strings.Contains(out, "est_cycles") {
		t.Fatalf("auto sweep CSV lacks routing columns\n%s", out)
	}
	if !strings.Contains(out, "auto,") {
		t.Fatalf("auto sweep CSV lacks the auto arch marker\n%s", out)
	}
}
