// Command hipe-sweep fans a whole parameter sweep — the cross-product
// of architectures, scan strategies, operation sizes, unroll depths,
// Q06 selectivity knobs, tuple counts and seeds — across all cores,
// then prints a summary table and optionally exports every cell as CSV
// or JSON. Exports are byte-identical at any worker count.
//
// Usage:
//
//	hipe-sweep -archs x86,hmc,hive,hipe -strategies column \
//	           -opsizes 16,32,64,128,256 -unrolls 1,8,32 \
//	           [-fused both] [-qtyhi 24,50] [-q1cuts 2436] \
//	           [-tuples 16384] [-seeds 42] \
//	           [-clustered both] [-workers N] [-csv out.csv] [-json out.json] \
//	           [-exec exact|estimate] [-cell-shards N] \
//	           [-counters] [-cpuprofile cpu.pprof] [-memprofile mem.pprof] \
//	           [-trace-out exec.trace]
//
// -exec selects the execution mode: "exact" (the default) simulates
// every cell on a full machine model; "estimate" prices cells with the
// analytic cost model instead — orders of magnitude faster, with the
// bounded cycle error documented in docs/PERFORMANCE.md — and marks
// every exported row with an exec_mode column. Estimate mode cannot
// produce machine counters, so -exec estimate -counters is refused.
//
// -cell-shards N (exact mode only) runs each cell as a parallel shard
// simulation: the cell's table is cut into N contiguous shards whose
// machines simulate concurrently, and the partials merge in shard
// order — cycles as the critical path, energy and counters summed — so
// exports stay byte-identical at any worker count.
//
// -counters snapshots each cell's machine counters (cache hits, DRAM
// activates, link packets, event-engine lanes…) after its run: the CSV
// export grows one ctr_<key> column per counter and the JSON export a
// Counters field per cell. Off by default; counter-off exports are
// byte-identical to their pre-observability schema, counter-on exports
// byte-identical at any worker count. -cpuprofile/-memprofile/-trace-out
// profile the simulator process itself over the sweep.
//
// -q1cuts adds TPC-H Q01-style grouped-aggregation cells to the query
// axis (one per shipdate cutoff), swept across the same architecture,
// op-size and unroll axes as the Q06 cells.
//
// -archs may include "auto": an auto cell keeps the grid's shape axes
// and the adaptive planner routes it to the predicted-fastest backend
// whose envelope admits that shape; exports gain routed_arch/est_cycles
// columns recording each decision.
//
// Per-architecture envelopes (x86 ≤ 64 B, unroll ≤ 8; HIPE
// column-at-a-time only) are trimmed automatically, mirroring the
// paper's figures, unless -strict is given. Flag combinations are
// validated before anything runs: zero/negative worker counts and
// unknown architecture or strategy names exit with a usage message.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	hipe "github.com/hipe-sim/hipe"
	"github.com/hipe-sim/hipe/internal/cliutil"
)

// flagGroups files every hipe-sweep flag under a subsystem; usage
// output prints group by group instead of one flat alphabetical list.
// main_test.go pins that no flag is left ungrouped.
var flagGroups = []cliutil.FlagGroup{
	{Title: "grid axes", Flags: []string{"archs", "strategies", "opsizes", "unrolls", "fused", "tuples", "seeds", "clustered"}},
	{Title: "workload", Flags: []string{"qtyhi", "q1cuts", "disclo", "dischi", "noise", "strict"}},
	{Title: "execution", Flags: []string{"exec", "cell-shards", "workers", "quiet"}},
	{Title: "export", Flags: []string{"csv", "json", "counters"}},
	{Title: "profiling", Flags: []string{"cpuprofile", "memprofile", "trace-out"}},
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage of hipe-sweep:")
	cliutil.PrintGroupedUsage(os.Stderr, flagGroups, flag.CommandLine)
}

// fail rejects a bad flag combination up front: message plus usage on
// stderr, exit 2 — never a late panic mid-sweep or a silent default.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hipe-sweep: "+format+"\n\n", args...)
	usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hipe-sweep: ")
	archs := flag.String("archs", "x86,hmc,hive,hipe", "comma list of architectures; \"auto\" adds planner-routed cells (validated against the backend registry)")
	strategies := flag.String("strategies", "column", "comma list of scan strategies (tuple,column)")
	opsizes := flag.String("opsizes", "256", "comma list of operation sizes in bytes")
	unrolls := flag.String("unrolls", "32", "comma list of loop unroll depths")
	fused := flag.String("fused", "false", "HIVE fused full-scan plan: false, true or both")
	tuples := flag.String("tuples", "16384", "comma list of lineitem tuple counts (multiples of 64)")
	seeds := flag.String("seeds", "42", "comma list of generator seeds")
	clustered := flag.String("clustered", "false", "date-clustered table: false, true or both")
	noise := flag.Int("noise", 10, "clustering noise in days (with -clustered)")
	qtyhi := flag.String("qtyhi", "24", "comma list of Q06 quantity bounds (the selectivity knob)")
	q1cuts := flag.String("q1cuts", "", "comma list of Q01 shipdate cutoffs in days; each adds grouped-aggregation cells to the query axis (empty = Q06 only)")
	disclo := flag.Int("disclo", 5, "Q06 discount lower bound")
	dischi := flag.Int("dischi", 7, "Q06 discount upper bound")
	strict := flag.Bool("strict", false, "fail on cells outside an architecture's envelope instead of skipping them")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size (defaults to GOMAXPROCS; must be positive)")
	csvPath := flag.String("csv", "", "write per-cell results as CSV to this path (- for stdout)")
	jsonPath := flag.String("json", "", "write per-cell results as JSON to this path (- for stdout)")
	counters := flag.Bool("counters", false, "capture each cell's machine-counter snapshot; exports gain one ctr_<key> column / Counters field per counter")
	execMode := flag.String("exec", "exact", "execution mode: exact simulates every cell, estimate prices it with the cost model (see docs/PERFORMANCE.md)")
	cellShards := flag.Int("cell-shards", 0, "exact mode: split each cell into N shards simulated in parallel and merged deterministically (0 = whole-table)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (snapshotted after the sweep) to this path")
	traceOut := flag.String("trace-out", "", "write a runtime execution trace of the sweep to this path")
	quiet := flag.Bool("quiet", false, "suppress progress on stderr")
	flag.Usage = usage
	flag.Parse()

	// Validate flag combinations before any parsing or simulation.
	if flag.NArg() > 0 {
		fail("unexpected argument %q (all options are flags)", flag.Arg(0))
	}
	if *workers <= 0 {
		fail("-workers %d must be positive", *workers)
	}
	if *noise < 0 {
		fail("-noise %d must not be negative", *noise)
	}
	if *disclo < 0 || *dischi > 10 || *disclo > *dischi {
		fail("-disclo %d / -dischi %d outside the generated 0..10 discount range", *disclo, *dischi)
	}
	if *csvPath == "-" && *jsonPath == "-" {
		fail("-csv - and -json - both claim stdout; pick one")
	}
	mode, ok := hipe.ParseExecMode(*execMode)
	if !ok {
		fail("unknown exec mode %q (have %s)", *execMode, hipe.ExecModeChoices())
	}
	if *cellShards < 0 {
		fail("-cell-shards %d must not be negative", *cellShards)
	}
	if mode == hipe.ExecEstimate {
		if *counters {
			fail("-exec estimate cannot capture machine counters (µop-level counters need exact simulation)")
		}
		if *cellShards > 1 {
			fail("-exec estimate runs no shard machines; drop -cell-shards")
		}
	}

	grid := hipe.Grid{
		OpSizes:     parseU32s(*opsizes, "opsizes"),
		Unrolls:     parseInts(*unrolls, "unrolls"),
		Fused:       parseBools(*fused, "fused"),
		Tuples:      parseInts(*tuples, "tuples"),
		Seeds:       parseU64s(*seeds, "seeds"),
		Clustered:   parseBools(*clustered, "clustered"),
		NoiseDays:   int32(*noise),
		SkipInvalid: !*strict,
	}
	// Architectures validate against the backend registry, so the error
	// message tracks whatever backends are actually registered.
	for _, s := range splitList(*archs) {
		a, ok := hipe.ParseArch(s)
		if !ok {
			fail("unknown arch %q (have %s)", s, hipe.ArchChoices())
		}
		grid.Archs = append(grid.Archs, a)
	}
	if len(grid.Archs) == 0 {
		fail("-archs selects no architecture")
	}
	stratNames := map[string]hipe.Strategy{"tuple": hipe.TupleAtATime, "column": hipe.ColumnAtATime}
	for _, s := range splitList(*strategies) {
		st, ok := stratNames[s]
		if !ok {
			fail("unknown strategy %q (have tuple, column)", s)
		}
		grid.Strategies = append(grid.Strategies, st)
	}
	if len(grid.Strategies) == 0 {
		fail("-strategies selects no scan strategy")
	}
	for _, qh := range parseInts(*qtyhi, "qtyhi") {
		q := hipe.DefaultQ06()
		q.DiscLo, q.DiscHi = int32(*disclo), int32(*dischi)
		q.QtyHi = int32(qh)
		grid.Queries = append(grid.Queries, q)
	}
	for _, cut := range parseInts(*q1cuts, "q1cuts") {
		if cut <= 0 || cut >= hipe.ShipDateDays {
			fail("-q1cuts entry %d outside the generated 1..%d day range", cut, hipe.ShipDateDays-1)
		}
		grid.Q1Queries = append(grid.Q1Queries, hipe.Q01{ShipCut: int32(cut)})
	}

	opt := hipe.SweepOptions{Workers: *workers, Counters: *counters, Exec: mode, CellShards: *cellShards}
	if !*quiet {
		opt.OnCell = func(done, total int, r hipe.CellResult) {
			fmt.Fprintf(os.Stderr, "\rhipe-sweep: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// The profiling hooks cover exactly the sweep — grid expansion and
	// flag parsing stay out of the profiles.
	prof := &hipe.Profile{CPUPath: *cpuprofile, MemPath: *memprofile, TracePath: *traceOut}
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rs, err := hipe.SweepWith(hipe.Default(), grid, opt)
	elapsed := time.Since(start)
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		log.Fatal(err)
	}

	// An export aimed at stdout owns it; the summary table would
	// corrupt the piped CSV/JSON.
	if *csvPath != "-" && *jsonPath != "-" {
		printSummary(rs, elapsed, opt)
	}

	if *csvPath != "" {
		writeExport(*csvPath, rs.WriteCSV)
	}
	if *jsonPath != "" {
		writeExport(*jsonPath, rs.WriteJSON)
	}
}

func printSummary(rs *hipe.ResultSet, elapsed time.Duration, opt hipe.SweepOptions) {
	// Speedups are against each workload group's best x86 cell, or the
	// group's best cell when the grid includes no x86 runs.
	fmt.Printf("%-44s %8s %6s %12s %10s %14s\n",
		"cell", "tuples", "seed", "cycles", "speedup", "DRAM energy pJ")
	for _, c := range rs.Cells {
		fmt.Printf("%-44s %8d %6d %12d %9.2fx %14.0f\n",
			c.Cell.Plan, c.Cell.Tuples, c.Cell.Seed,
			c.Result.Cycles, c.Speedup, c.Result.Energy.DRAMPJ())
	}
	fmt.Printf("\nbest per architecture:\n")
	for _, c := range rs.Best() {
		fmt.Printf("  %-42s %12d cycles %9.2fx\n", c.Cell.Plan, c.Result.Cycles, c.Speedup)
	}
	fmt.Printf("\n%d cells in %v (%d workers)\n",
		len(rs.Cells), elapsed.Round(time.Millisecond), opt.EffectiveWorkers())
}

func writeExport(path string, write func(w io.Writer) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if path != "-" {
		log.Printf("wrote %s", path)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s, name string) []int {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			fail("bad -%s entry %q", name, f)
		}
		out = append(out, v)
	}
	return out
}

func parseU32s(s, name string) []uint32 {
	var out []uint32
	for _, v := range parseInts(s, name) {
		out = append(out, uint32(v))
	}
	return out
}

func parseU64s(s, name string) []uint64 {
	var out []uint64
	for _, f := range splitList(s) {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			fail("bad -%s entry %q", name, f)
		}
		out = append(out, v)
	}
	return out
}

func parseBools(s, name string) []bool {
	switch strings.TrimSpace(s) {
	case "false":
		return []bool{false}
	case "true":
		return []bool{true}
	case "both":
		return []bool{false, true}
	}
	fail("bad -%s value %q (want false, true or both)", name, s)
	return nil
}
