// Command hipe-benchjson runs the repository's benchmark suite — the
// Figure 3, Q01, routing, fleet-serving and counter-overhead benches at
// the module root and the scheduler microbenches in internal/sim — and
// emits one machine-readable JSON document per invocation: ns/op, B/op,
// allocs/op and every custom metric
// (simulated cycles per plan, DRAM pJ) for each benchmark. The
// committed BENCH_<n>.json files form the repo's performance
// trajectory: each perf PR appends one, measured on the PR's HEAD,
// optionally against a captured baseline of the previous HEAD.
//
// Usage:
//
//	hipe-benchjson -out BENCH_3.json \
//	    [-figure-benchtime 3x] [-micro-benchtime 10000x] \
//	    [-baseline old-bench.txt] [-check-allocs] [-skip-figures] \
//	    [-prev BENCH_7.json] [-max-regress-pct 10] [-min-sweep-speedup 5]
//
// -baseline takes a raw `go test -bench` output file (captured before a
// change) and records each baseline benchmark alongside, with a
// wall-clock speedup ratio for benchmarks present in both runs.
//
// -check-allocs exits non-zero if any scheduler microbench reports a
// nonzero allocs/op — the CI bench-smoke job's allocation-regression
// tripwire (beside the testing.AllocsPerRun unit tests).
//
// -prev takes a previously committed BENCH_<n>.json document and, with
// -max-regress-pct P, exits non-zero if any figure bench present in
// both documents got more than P% slower — the CI wall-clock regression
// tripwire across the committed performance trajectory.
//
// -min-sweep-speedup S gates the BenchmarkSweepGrid lanes: the emitted
// sweep_grid section records the exact, sharded and estimate lanes'
// ns/op plus the estimate fast path's aggregate speedup over exact, and
// the run exits non-zero if that speedup falls below S.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Comparison pairs a benchmark with its baseline.
type Comparison struct {
	Name            string  `json:"name"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"`
	BaselineAllocs  float64 `json:"baseline_allocs_per_op"`
	Allocs          float64 `json:"allocs_per_op"`
}

// Overhead pairs a counters-on benchmark lane with its counters-off
// twin: the measured cost of enabling machine-counter capture on the
// same workload. The repo-wide budget is overhead_pct < 5.
type Overhead struct {
	Name        string  `json:"name"`
	OffNsPerOp  float64 `json:"off_ns_per_op"`
	OnNsPerOp   float64 `json:"on_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

// SweepGrid summarises the BenchmarkSweepGrid execution-mode lanes:
// the same sweep grid run exact, exact with 4-way cell sharding, and
// through the cost-model estimate fast path. FastPathSpeedup is the
// PR 9 figure-of-merit (estimate lane throughput over exact).
type SweepGrid struct {
	ExactNsPerOp    float64 `json:"exact_ns_per_op"`
	ShardedNsPerOp  float64 `json:"sharded_ns_per_op"`
	EstimateNsPerOp float64 `json:"estimate_ns_per_op"`
	ShardSpeedup    float64 `json:"shard_speedup"`
	FastPathSpeedup float64 `json:"fast_path_speedup"`
}

// AdaptiveRouting summarises the BenchmarkAdaptiveRouting lanes: the
// identical drifted-prior load test routed statically and with the
// feedback loop closed. CycleReductionPct is the PR 10 figure-of-merit
// (simulated service cycles the adaptive planner recovers from the
// mis-calibration); OverheadPct is the feedback loop's wall-clock cost
// over the static lane.
type AdaptiveRouting struct {
	StaticNsPerOp     float64 `json:"static_ns_per_op"`
	AdaptiveNsPerOp   float64 `json:"adaptive_ns_per_op"`
	OverheadPct       float64 `json:"overhead_pct"`
	StaticServiceCyc  float64 `json:"static_service_cycles"`
	AdaptServiceCyc   float64 `json:"adaptive_service_cycles"`
	CycleReductionPct float64 `json:"cycle_reduction_pct"`
	StaticP50         float64 `json:"static_p50_cycles"`
	AdaptP50          float64 `json:"adaptive_p50_cycles"`
	Explored          float64 `json:"explored_requests"`
}

// Doc is the emitted document.
type Doc struct {
	GoVersion       string           `json:"go_version"`
	GOMAXPROCS      int              `json:"gomaxprocs"`
	Figures         []BenchResult    `json:"figure_benches,omitempty"`
	Scheduler       []BenchResult    `json:"scheduler_benches"`
	CounterOverhead []Overhead       `json:"counter_overhead,omitempty"`
	SweepGrid       *SweepGrid       `json:"sweep_grid,omitempty"`
	AdaptiveRouting *AdaptiveRouting `json:"adaptive_routing,omitempty"`
	Baseline        []BenchResult    `json:"baseline,omitempty"`
	Comparisons     []Comparison     `json:"comparisons,omitempty"`
}

// sweepGrid pairs the BenchmarkSweepGrid lanes into one summary row;
// nil when the lanes are absent (e.g. -skip-figures).
func sweepGrid(rs []BenchResult) *SweepGrid {
	byName := map[string]BenchResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	exact, ok := byName["BenchmarkSweepGrid/exact"]
	if !ok || exact.NsPerOp == 0 {
		return nil
	}
	g := &SweepGrid{ExactNsPerOp: exact.NsPerOp}
	if sharded, ok := byName["BenchmarkSweepGrid/exact-sharded"]; ok && sharded.NsPerOp > 0 {
		g.ShardedNsPerOp = sharded.NsPerOp
		g.ShardSpeedup = exact.NsPerOp / sharded.NsPerOp
	}
	if est, ok := byName["BenchmarkSweepGrid/estimate"]; ok && est.NsPerOp > 0 {
		g.EstimateNsPerOp = est.NsPerOp
		g.FastPathSpeedup = exact.NsPerOp / est.NsPerOp
	}
	return g
}

// adaptiveRouting pairs the BenchmarkAdaptiveRouting lanes into one
// summary row; nil when the lanes are absent (e.g. -skip-figures).
func adaptiveRouting(rs []BenchResult) *AdaptiveRouting {
	byName := map[string]BenchResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	static, ok := byName["BenchmarkAdaptiveRouting/static"]
	adapt, ok2 := byName["BenchmarkAdaptiveRouting/adaptive"]
	if !ok || !ok2 || static.NsPerOp == 0 {
		return nil
	}
	a := &AdaptiveRouting{
		StaticNsPerOp:    static.NsPerOp,
		AdaptiveNsPerOp:  adapt.NsPerOp,
		OverheadPct:      100 * (adapt.NsPerOp - static.NsPerOp) / static.NsPerOp,
		StaticServiceCyc: static.Metrics["simcyc:service"],
		AdaptServiceCyc:  adapt.Metrics["simcyc:service"],
		StaticP50:        static.Metrics["simcyc:p50"],
		AdaptP50:         adapt.Metrics["simcyc:p50"],
		Explored:         adapt.Metrics["explored"],
	}
	if a.StaticServiceCyc > 0 {
		a.CycleReductionPct = 100 * (a.StaticServiceCyc - a.AdaptServiceCyc) / a.StaticServiceCyc
	}
	return a
}

// counterOverhead pairs every ".../counters-off" lane with its
// ".../counters-on" sibling (the BenchmarkFigCounters sub-benchmarks).
func counterOverhead(rs []BenchResult) []Overhead {
	byName := map[string]BenchResult{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	var out []Overhead
	for _, r := range rs {
		if !strings.HasSuffix(r.Name, "/counters-off") || r.NsPerOp == 0 {
			continue
		}
		base := strings.TrimSuffix(r.Name, "/counters-off")
		on, ok := byName[base+"/counters-on"]
		if !ok {
			continue
		}
		out = append(out, Overhead{
			Name:        base,
			OffNsPerOp:  r.NsPerOp,
			OnNsPerOp:   on.NsPerOp,
			OverheadPct: 100 * (on.NsPerOp - r.NsPerOp) / r.NsPerOp,
		})
	}
	return out
}

// benchLine matches one `go test -bench` result line: the name, the
// iteration count, then value/unit pairs. procSuffix strips the -P
// GOMAXPROCS suffix so names are stable across machines.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	procSuffix = regexp.MustCompile(`-\d+$`)
)

// parseBench extracts benchmark results from raw `go test -bench` output.
func parseBench(out string) []BenchResult {
	var results []BenchResult
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := BenchResult{
			Name:       procSuffix.ReplaceAllString(m[1], ""),
			Iterations: iters,
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results
}

// runBench executes one `go test -bench` invocation and parses it.
func runBench(pkg, pattern, benchtime string) ([]BenchResult, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-benchtime", benchtime, pkg}
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return parseBench(string(out)), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hipe-benchjson: ")
	out := flag.String("out", "BENCH.json", "output JSON path (- for stdout)")
	figureBenchtime := flag.String("figure-benchtime", "3x", "benchtime for the Figure 3 benches")
	microBenchtime := flag.String("micro-benchtime", "200ms", "benchtime for the scheduler microbenches")
	baselinePath := flag.String("baseline", "", "raw `go test -bench` output captured before the change; recorded with speedups")
	checkAllocs := flag.Bool("check-allocs", false, "exit 1 if a scheduler microbench reports allocs/op > 0")
	skipFigures := flag.Bool("skip-figures", false, "skip the (slow) figure benches; scheduler microbenches only")
	prevPath := flag.String("prev", "", "previously committed BENCH_<n>.json; with -max-regress-pct, gates wall-clock regressions on matching figure benches")
	maxRegressPct := flag.Float64("max-regress-pct", 0, "exit 1 if a figure bench present in -prev got more than this many percent slower (0 disables)")
	minSweepSpeedup := flag.Float64("min-sweep-speedup", 0, "exit 1 if the sweep-grid estimate lane's speedup over exact falls below this factor (0 disables)")
	flag.Parse()

	// fail rejects a bad flag combination up front: message plus usage
	// on stderr, exit 2 — matching the other CLIs' usage-error convention.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hipe-benchjson: "+format+"\n\nusage of hipe-benchjson:\n", args...)
		flag.PrintDefaults()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected argument %q (all options are flags)", flag.Arg(0))
	}
	if *out == "" {
		fail("-out must name a path (- for stdout)")
	}
	if *figureBenchtime == "" || *microBenchtime == "" {
		fail("-figure-benchtime and -micro-benchtime must not be empty")
	}
	if *maxRegressPct < 0 {
		fail("-max-regress-pct %g must not be negative", *maxRegressPct)
	}
	if *maxRegressPct > 0 && *prevPath == "" {
		fail("-max-regress-pct needs a -prev document to compare against")
	}
	if *minSweepSpeedup < 0 {
		fail("-min-sweep-speedup %g must not be negative", *minSweepSpeedup)
	}
	if (*minSweepSpeedup > 0 || *maxRegressPct > 0) && *skipFigures {
		fail("the -min-sweep-speedup and -max-regress-pct gates need the figure benches; drop -skip-figures")
	}

	doc := Doc{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}

	var err error
	if !*skipFigures {
		log.Printf("running figure benches (-benchtime %s)...", *figureBenchtime)
		// The Q01 aggregation, routing and fleet-serving benches ride
		// with the figure panels: whole-workload simulations (and, for
		// routing, the planner's per-request overhead and plannerpct
		// share) on the paper's configurations. BenchmarkFigCounters'
		// counters-off/on lanes are paired into the counter_overhead
		// section and BenchmarkAdaptiveRouting's static/adaptive lanes
		// into the adaptive_routing section below.
		doc.Figures, err = runBench(".", "^(BenchmarkFig|BenchmarkQ1|BenchmarkAutoRouting|BenchmarkAdaptiveRouting|BenchmarkFleet|BenchmarkSweepGrid)", *figureBenchtime)
		if err != nil {
			log.Fatal(err)
		}
		doc.CounterOverhead = counterOverhead(doc.Figures)
		doc.SweepGrid = sweepGrid(doc.Figures)
		doc.AdaptiveRouting = adaptiveRouting(doc.Figures)
	}
	log.Printf("running scheduler microbenches (-benchtime %s)...", *microBenchtime)
	doc.Scheduler, err = runBench("./internal/sim/", "^(BenchmarkSchedule|BenchmarkEngine)", *microBenchtime)
	if err != nil {
		log.Fatal(err)
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			log.Fatal(err)
		}
		doc.Baseline = parseBench(string(raw))
		byName := map[string]BenchResult{}
		for _, b := range doc.Baseline {
			byName[b.Name] = b
		}
		for _, rs := range [][]BenchResult{doc.Figures, doc.Scheduler} {
			for _, r := range rs {
				b, ok := byName[r.Name]
				if !ok || r.NsPerOp == 0 {
					continue
				}
				doc.Comparisons = append(doc.Comparisons, Comparison{
					Name:            r.Name,
					BaselineNsPerOp: b.NsPerOp,
					NsPerOp:         r.NsPerOp,
					Speedup:         b.NsPerOp / r.NsPerOp,
					BaselineAllocs:  b.AllocsPerOp,
					Allocs:          r.AllocsPerOp,
				})
			}
		}
	}

	if *checkAllocs {
		failed := false
		for _, r := range doc.Scheduler {
			// The steady-state scheduler lanes must stay allocation-free;
			// EngineRandom/EngineScheduleRun build a fresh engine per
			// iteration and are exempt.
			if strings.HasPrefix(r.Name, "BenchmarkSchedule") && r.AllocsPerOp > 0 {
				log.Printf("ALLOC REGRESSION: %s reports %.1f allocs/op, want 0", r.Name, r.AllocsPerOp)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		log.Printf("alloc check passed: all scheduler lanes at 0 allocs/op")
	}

	if *prevPath != "" && *maxRegressPct > 0 {
		raw, err := os.ReadFile(*prevPath)
		if err != nil {
			log.Fatal(err)
		}
		var prev Doc
		if err := json.Unmarshal(raw, &prev); err != nil {
			log.Fatalf("parse %s: %v", *prevPath, err)
		}
		prevByName := map[string]BenchResult{}
		for _, b := range prev.Figures {
			prevByName[b.Name] = b
		}
		failed := false
		for _, r := range doc.Figures {
			b, ok := prevByName[r.Name]
			if !ok || b.NsPerOp == 0 || r.NsPerOp == 0 {
				continue
			}
			pct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
			if pct > *maxRegressPct {
				log.Printf("WALL-CLOCK REGRESSION: %s %.0f -> %.0f ns/op (%+.1f%%, budget %.1f%%)",
					r.Name, b.NsPerOp, r.NsPerOp, pct, *maxRegressPct)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		log.Printf("regression check passed: no figure bench slower than %s by more than %.1f%%", *prevPath, *maxRegressPct)
	}

	if *minSweepSpeedup > 0 {
		if doc.SweepGrid == nil {
			log.Fatal("sweep-speedup gate: BenchmarkSweepGrid lanes missing from the figure run")
		}
		if doc.SweepGrid.FastPathSpeedup < *minSweepSpeedup {
			log.Printf("SWEEP SPEEDUP BELOW GATE: estimate fast path %.1fx over exact, want >= %.1fx",
				doc.SweepGrid.FastPathSpeedup, *minSweepSpeedup)
			os.Exit(1)
		}
		log.Printf("sweep-speedup gate passed: estimate fast path %.1fx over exact (gate %.1fx)",
			doc.SweepGrid.FastPathSpeedup, *minSweepSpeedup)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
