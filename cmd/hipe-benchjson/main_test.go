package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runBinary executes this command via `go run` from the module root —
// the command resolves its bench packages (./internal/sim/) relative to
// the working directory, exactly as its documented invocations do.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/hipe-benchjson"}, args...)...)
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestFlagValidation: malformed invocations die with a usage message
// and exit status 2, before any `go test -bench` child runs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"empty out", []string{"-out", ""}, "-out must name a path"},
		{"empty benchtime", []string{"-micro-benchtime", ""}, "must not be empty"},
		{"negative regress budget", []string{"-max-regress-pct", "-5"}, "must not be negative"},
		{"regress gate without prev", []string{"-max-regress-pct", "10"}, "needs a -prev document"},
		{"negative sweep gate", []string{"-min-sweep-speedup", "-1"}, "must not be negative"},
		{"sweep gate without figures", []string{"-min-sweep-speedup", "5", "-skip-figures"}, "drop -skip-figures"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			// `go run` reports the child's failure as its own exit 1 and
			// appends the child's "exit status 2" line.
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestParseBench covers the benchmark-line parser without shelling out:
// names lose their GOMAXPROCS suffix, standard units land in their
// fields and custom metrics in the Metrics map.
func TestParseBench(t *testing.T) {
	out := `
goos: linux
BenchmarkScheduleRing-8   	12345678	        95.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig3a-8          	       3	 410000000 ns/op	 1234567 cycles/plan	     890 DRAM-pJ/plan	  200 B/op	       5 allocs/op
PASS
`
	rs := parseBench(out)
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	fig, ring := rs[0], rs[1]
	if fig.Name != "BenchmarkFig3a" || ring.Name != "BenchmarkScheduleRing" {
		t.Fatalf("names not sorted/stripped: %q, %q", fig.Name, ring.Name)
	}
	if ring.NsPerOp != 95.1 || ring.AllocsPerOp != 0 {
		t.Fatalf("ring mis-parsed: %+v", ring)
	}
	if fig.Metrics["cycles/plan"] != 1234567 || fig.Metrics["DRAM-pJ/plan"] != 890 {
		t.Fatalf("custom metrics mis-parsed: %+v", fig.Metrics)
	}
}

// TestSweepGridPairing covers the sweep_grid lane pairing without
// shelling out: the three BenchmarkSweepGrid lanes collapse into one
// summary row with both speedup ratios.
func TestSweepGridPairing(t *testing.T) {
	g := sweepGrid([]BenchResult{
		{Name: "BenchmarkSweepGrid/exact", NsPerOp: 1000},
		{Name: "BenchmarkSweepGrid/exact-sharded", NsPerOp: 400},
		{Name: "BenchmarkSweepGrid/estimate", NsPerOp: 10},
		{Name: "BenchmarkFig3a", NsPerOp: 5},
	})
	if g == nil {
		t.Fatal("lanes present but no sweep_grid row")
	}
	if g.ShardSpeedup != 2.5 || g.FastPathSpeedup != 100 {
		t.Fatalf("speedups mis-paired: %+v", g)
	}
	if sweepGrid([]BenchResult{{Name: "BenchmarkFig3a", NsPerOp: 5}}) != nil {
		t.Fatal("sweep_grid row fabricated without lanes")
	}
}

// TestMicrobenchRun drives the scheduler microbenches once through the
// real `go test -bench` pipeline and checks the emitted document.
func TestMicrobenchRun(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go test -bench")
	}
	code, out := runBinary(t, "-skip-figures", "-micro-benchtime", "1x", "-out", "-")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	for _, want := range []string{`"go_version"`, `"scheduler_benches"`, "BenchmarkSchedule"} {
		if !strings.Contains(out, want) {
			t.Fatalf("document missing %q:\n%s", want, out)
		}
	}
}
