package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional arg", []string{"3d"}, "unexpected argument"},
		{"unknown figure", []string{"-fig", "9z"}, `unknown figure "9z"`},
		{"zero tuples", []string{"-tuples", "0"}, "positive multiple of 64"},
		{"non-multiple tuples", []string{"-tuples", "1000"}, "positive multiple of 64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.want)
			}
			if !strings.Contains(stderr, "usage of hipe-bench") {
				t.Fatalf("stderr %q lacks the usage block", stderr)
			}
		})
	}
}

func TestSingleFigureRuns(t *testing.T) {
	code, out, stderr := runCLI(t, "-fig", "3d", "-tuples", "256", "-timing=false")
	if code != 0 {
		t.Fatalf("exit code %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(out, "Figure 3d") {
		t.Fatalf("output lacks the figure table:\n%s", out)
	}
	if strings.Contains(out, "wall time") {
		t.Fatal("-timing=false still printed the wall-clock line")
	}
}

func TestTimingSuppressionIsByteStable(t *testing.T) {
	_, a, _ := runCLI(t, "-fig", "3d", "-tuples", "256", "-timing=false")
	_, b, _ := runCLI(t, "-fig", "3d", "-tuples", "256", "-timing=false")
	if a != b {
		t.Fatal("-timing=false output differs across runs")
	}
}
