package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional arg", []string{"3d"}, "unexpected argument"},
		{"unknown figure", []string{"-fig", "9z"}, `unknown figure "9z"`},
		{"zero tuples", []string{"-tuples", "0"}, "positive multiple of 64"},
		{"non-multiple tuples", []string{"-tuples", "1000"}, "positive multiple of 64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.want)
			}
			if !strings.Contains(stderr, "usage of hipe-bench") {
				t.Fatalf("stderr %q lacks the usage block", stderr)
			}
		})
	}
}

// TestGroupedUsage pins the subsystem grouping of the help text: every
// group header prints, the usage banner survives, and no flag has
// fallen out of the groups into the trailing "ungrouped" section.
func TestGroupedUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 2 {
		t.Fatalf("-h exit code %d, want 2", code)
	}
	for _, want := range []string{
		"usage of hipe-bench", "figures:", "profiling:",
		"-fig", "-trace-out",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage output missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(stderr, "ungrouped") {
		t.Errorf("a flag escaped the subsystem groups:\n%s", stderr)
	}
	if strings.Contains(stderr, "unregistered flag") {
		t.Errorf("a group lists a flag that is not registered:\n%s", stderr)
	}
}

func TestSingleFigureRuns(t *testing.T) {
	code, out, stderr := runCLI(t, "-fig", "3d", "-tuples", "256", "-timing=false")
	if code != 0 {
		t.Fatalf("exit code %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(out, "Figure 3d") {
		t.Fatalf("output lacks the figure table:\n%s", out)
	}
	if strings.Contains(out, "wall time") {
		t.Fatal("-timing=false still printed the wall-clock line")
	}
}

func TestTimingSuppressionIsByteStable(t *testing.T) {
	_, a, _ := runCLI(t, "-fig", "3d", "-tuples", "256", "-timing=false")
	_, b, _ := runCLI(t, "-fig", "3d", "-tuples", "256", "-timing=false")
	if a != b {
		t.Fatal("-timing=false output differs across runs")
	}
}
