// Command hipe-bench regenerates the paper's evaluation: every panel of
// Figure 3 as a text table, normalised against the x86 baseline exactly
// as the paper plots them.
//
// Usage:
//
//	hipe-bench [-fig 3a|3b|3c|3d|all] [-tuples N] [-seed S] [-timing=false]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace-out exec.trace]
//
// The profiling flags capture pprof CPU/heap profiles and a runtime
// execution trace of the simulator process over the figure runs.
//
// Flag combinations are validated before anything runs — positional
// arguments, unknown figure names and invalid tuple counts exit with a
// usage message, matching the other CLIs. -timing=false suppresses the
// wall-clock line, making the output deterministic (the CI determinism
// gate compares it byte-for-byte across worker counts).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	hipe "github.com/hipe-sim/hipe"
	"github.com/hipe-sim/hipe/internal/cliutil"
)

// flagGroups files every hipe-bench flag under a subsystem; usage
// output prints group by group. main_test.go pins that no flag is left
// ungrouped.
var flagGroups = []cliutil.FlagGroup{
	{Title: "figures", Flags: []string{"fig", "tuples", "seed", "timing"}},
	{Title: "profiling", Flags: []string{"cpuprofile", "memprofile", "trace-out"}},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses and validates args, regenerates the requested figures to
// stdout, and returns the process exit code. Factored out of main so
// the flag validation is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hipe-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure to regenerate: 3a, 3b, 3c, 3d or all")
	tuples := fs.Int("tuples", 16384, "lineitem tuples (multiple of 64)")
	seed := fs.Uint64("seed", 42, "generator seed")
	timing := fs.Bool("timing", true, "print the wall-clock time of each figure (disable for byte-stable output)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the figure runs to this path")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (snapshotted after the figure runs) to this path")
	traceOut := fs.String("trace-out", "", "write a runtime execution trace of the figure runs to this path")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage of hipe-bench:")
		cliutil.PrintGroupedUsage(stderr, flagGroups, fs)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "hipe-bench: "+format+"\n\n", a...)
		fs.Usage()
		return 2
	}
	// Validate every flag combination up front: a malformed run must
	// die with usage, not after minutes of simulation.
	if fs.NArg() > 0 {
		return fail("unexpected argument %q (all options are flags)", fs.Arg(0))
	}
	if *tuples <= 0 || *tuples%64 != 0 {
		return fail("-tuples %d must be a positive multiple of 64", *tuples)
	}
	figures := hipe.Figures()
	if *fig != "all" {
		if !slices.Contains(figures, *fig) {
			return fail("unknown figure %q (have %v or all)", *fig, figures)
		}
		figures = []string{*fig}
	}

	cfg := hipe.Default()
	cfg.Tuples = *tuples
	cfg.Seed = *seed

	// The profiling hooks cover exactly the figure simulations.
	prof := &hipe.Profile{CPUPath: *cpuprofile, MemPath: *memprofile, TracePath: *traceOut}
	if err := prof.Start(); err != nil {
		fmt.Fprintf(stderr, "hipe-bench: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "HIPE reproduction — TPC-H Q06 selection scan, %d tuples, seed %d\n\n", *tuples, *seed)
	for _, name := range figures {
		start := time.Now()
		table, err := hipe.Figure(cfg, name)
		if err != nil {
			prof.Stop()
			fmt.Fprintf(stderr, "hipe-bench: figure %s failed: %v\n", name, err)
			return 1
		}
		fmt.Fprint(stdout, table.String())
		if *timing {
			fmt.Fprintf(stdout, "   (simulated in %v wall time)\n", time.Since(start).Round(time.Millisecond))
		}
		fmt.Fprintln(stdout)
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(stderr, "hipe-bench: %v\n", err)
		return 1
	}
	return 0
}
