// Command hipe-bench regenerates the paper's evaluation: every panel of
// Figure 3 as a text table, normalised against the x86 baseline exactly
// as the paper plots them.
//
// Usage:
//
//	hipe-bench [-fig 3a|3b|3c|3d|all] [-tuples N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hipe-bench: ")
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 3c, 3d or all")
	tuples := flag.Int("tuples", 16384, "lineitem tuples (multiple of 64)")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	cfg := hipe.Default()
	cfg.Tuples = *tuples
	cfg.Seed = *seed

	figures := hipe.Figures()
	if *fig != "all" {
		figures = []string{*fig}
	}
	fmt.Printf("HIPE reproduction — TPC-H Q06 selection scan, %d tuples, seed %d\n\n", *tuples, *seed)
	for _, name := range figures {
		start := time.Now()
		table, err := hipe.Figure(cfg, name)
		if err != nil {
			log.Printf("figure %s failed: %v", name, err)
			os.Exit(1)
		}
		fmt.Print(table.String())
		fmt.Printf("   (simulated in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
