// Command hipe-sim runs a single experiment configuration and reports
// cycles, energy and verification status — the workhorse for exploring
// points outside the paper's sweeps.
//
// Usage:
//
//	hipe-sim -arch hipe -strategy column -opsize 256 -unroll 32 [-fused]
//	         [-tuples N] [-seed S] [-clustered] [-print-config]
//
// Flag combinations are validated before anything runs — positional
// arguments, unknown architecture or strategy names and invalid plan
// shapes exit with a usage message, matching the other CLIs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hipe "github.com/hipe-sim/hipe"
	"github.com/hipe-sim/hipe/internal/cliutil"
)

// flagGroups files every hipe-sim flag under a subsystem; usage output
// prints group by group. main_test.go pins that no flag is left
// ungrouped.
var flagGroups = []cliutil.FlagGroup{
	{Title: "plan", Flags: []string{"arch", "strategy", "opsize", "unroll", "fused"}},
	{Title: "table", Flags: []string{"tuples", "seed", "clustered"}},
	{Title: "inspection", Flags: []string{"print-config"}},
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage of hipe-sim:")
	cliutil.PrintGroupedUsage(os.Stderr, flagGroups, flag.CommandLine)
}

// fail rejects a bad flag combination up front: message plus usage on
// stderr, exit 2 — matching the other CLIs' usage-error convention.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hipe-sim: "+format+"\n\n", args...)
	usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hipe-sim: ")
	arch := flag.String("arch", "hipe", "x86, hmc, hive or hipe")
	strategy := flag.String("strategy", "column", "tuple or column")
	opsize := flag.Uint("opsize", 256, "operation size in bytes (16..256)")
	unroll := flag.Int("unroll", 32, "loop unroll depth (1..32)")
	fused := flag.Bool("fused", false, "use HIVE's fused full-scan plan")
	tuples := flag.Int("tuples", 16384, "lineitem tuples (multiple of 64)")
	seed := flag.Uint64("seed", 42, "generator seed")
	clustered := flag.Bool("clustered", false, "date-clustered table (append-ordered)")
	printConfig := flag.Bool("print-config", false, "dump the Table I machine configuration and exit")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() > 0 {
		fail("unexpected argument %q (all options are flags)", flag.Arg(0))
	}
	if *printConfig {
		dumpConfig()
		return
	}

	archs := map[string]hipe.Arch{"x86": hipe.X86, "hmc": hipe.HMC, "hive": hipe.HIVE, "hipe": hipe.HIPE}
	a, ok := archs[*arch]
	if !ok {
		fail("unknown arch %q (have x86, hmc, hive, hipe)", *arch)
	}
	strategies := map[string]hipe.Strategy{"tuple": hipe.TupleAtATime, "column": hipe.ColumnAtATime}
	s, ok := strategies[*strategy]
	if !ok {
		fail("unknown strategy %q (have tuple, column)", *strategy)
	}
	if *tuples <= 0 || *tuples%64 != 0 {
		fail("-tuples %d must be a positive multiple of 64", *tuples)
	}
	plan := hipe.Plan{Arch: a, Strategy: s, OpSize: uint32(*opsize),
		Unroll: *unroll, Fused: *fused, Q: hipe.DefaultQ06()}
	if err := plan.Validate(); err != nil {
		fail("%v", err)
	}

	var tab *hipe.Lineitem
	if *clustered {
		tab = hipe.GenerateClustered(*tuples, *seed, 10)
	} else {
		tab = hipe.Generate(*tuples, *seed)
	}
	cfg := hipe.Default()
	cfg.Tuples = *tuples
	cfg.Seed = *seed

	res, err := hipe.Run(cfg, tab, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan            %s\n", plan)
	fmt.Printf("tuples          %d (selectivity %.4f)\n", *tuples, hipe.Selectivity(tab, plan.Q))
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("cycles/tuple    %.2f\n", float64(res.Cycles)/float64(*tuples))
	fmt.Printf("energy          %s\n", res.Energy)
	fmt.Printf("result checks   %d (all passed)\n", res.Checked)
	if res.Squashed > 0 {
		fmt.Printf("squashed        %d predicated instructions, %d DRAM bytes avoided\n",
			res.Squashed, res.SquashedDRAMBytes)
	}
}

func dumpConfig() {
	m := hipe.DefaultMachine()
	fmt.Println("Table I machine configuration:")
	fmt.Printf("  cores          %s: %d-wide issue, %d-entry ROB, MOB %d read / %d write\n",
		m.CPU.Name, m.CPU.IssueWidth, m.CPU.ROBSize, m.CPU.MOBReads, m.CPU.MOBWrites)
	fmt.Printf("  fetch          %d B/cycle, %d-entry fetch buffer, %d-entry decode buffer\n",
		m.CPU.FetchBytes, m.CPU.FetchBufSize, m.CPU.DecodeBufSize)
	fmt.Printf("  predictor      two-level GAs, %d-entry PHT, %d-entry BTB\n",
		m.CPU.PHTEntries, m.CPU.BTBEntries)
	fmt.Printf("  L1D            %d KB, %d-way, %d-cycle, %s prefetch\n",
		m.L1.SizeBytes>>10, m.L1.Ways, m.L1.Latency, m.L1.Prefetch)
	fmt.Printf("  L2             %d KB, %d-way, %d-cycle, %s prefetch\n",
		m.L2.SizeBytes>>10, m.L2.Ways, m.L2.Latency, m.L2.Prefetch)
	fmt.Printf("  L3             %d MB, %d-way, %d-cycle, inclusive\n",
		m.L3.SizeBytes>>20, m.L3.Ways, m.L3.Latency)
	fmt.Printf("  HMC            %d vaults x %d banks, %d B rows, %s\n",
		m.Geometry.Vaults, m.Geometry.Banks, m.Geometry.RowBytes, m.DRAM.Policy)
	fmt.Printf("  DRAM timing    CAS %d, RP %d, RCD %d, RAS %d, CWD %d (DRAM cycles, 1:%d vs core)\n",
		m.DRAM.CAS, m.DRAM.RP, m.DRAM.RCD, m.DRAM.RAS, m.DRAM.CWD, m.DRAM.ClockRatio)
	fmt.Printf("  links          %d links, %d B/cycle/direction, %d-cycle latency\n",
		m.Links.Links, m.Links.BytesPerCycle, m.Links.Latency)
	fmt.Printf("  HMC ISA        %d in-flight window, %d-cycle FU\n",
		m.HMC.MaxInFlight, m.HMC.FULatency)
	fmt.Printf("  HIVE/HIPE      36 x 256 B registers, 1:%d engine clock, width %d\n",
		m.HIPE.ClockDivider, m.HIPE.Width)
}
