package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runBinary executes this command via `go run .` — flag validation runs
// before any simulation, so usage-error cases return immediately.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestFlagValidation: malformed invocations die with a usage message
// and exit status 2, before any simulation runs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"unknown arch", []string{"-arch", "riscv"}, `unknown arch "riscv"`},
		{"unknown strategy", []string{"-strategy", "vector"}, `unknown strategy "vector"`},
		{"bad tuples", []string{"-tuples", "100"}, "positive multiple of 64"},
		{"bad plan shape", []string{"-opsize", "7"}, "usage of hipe-sim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			// `go run` reports the child's failure as its own exit 1 and
			// appends the child's "exit status 2" line.
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestGroupedUsage pins the subsystem grouping of the help text: every
// group header prints, the usage banner survives, and no flag has
// fallen out of the groups into the trailing "ungrouped" section.
func TestGroupedUsage(t *testing.T) {
	// flag's ExitOnError treats -h as success, so only the output matters.
	_, out := runBinary(t, "-h")
	for _, want := range []string{
		"usage of hipe-sim", "plan:", "table:", "inspection:",
		"-arch", "-print-config",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ungrouped") {
		t.Errorf("a flag escaped the subsystem groups:\n%s", out)
	}
	if strings.Contains(out, "unregistered flag") {
		t.Errorf("a group lists a flag that is not registered:\n%s", out)
	}
}

// TestPrintConfig: -print-config dumps the Table I machine table and
// exits cleanly without simulating.
func TestPrintConfig(t *testing.T) {
	code, out := runBinary(t, "-print-config")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	for _, want := range []string{"Table I machine configuration", "L1D", "HMC", "links"} {
		if !strings.Contains(out, want) {
			t.Fatalf("config dump missing %q:\n%s", want, out)
		}
	}
}

// TestSingleRun simulates one small configuration end to end.
func TestSingleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	code, out := runBinary(t, "-arch", "hipe", "-tuples", "1024")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	for _, want := range []string{"plan", "cycles", "energy", "all passed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
