package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCLI invokes run with split args and returns (exit code, stdout,
// stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"positional arg", []string{"extra"}, "unexpected argument"},
		{"zero tuples", []string{"-n", "0"}, "positive multiple of 64"},
		{"negative tuples", []string{"-n", "-64"}, "positive multiple of 64"},
		{"non-multiple tuples", []string{"-n", "100"}, "positive multiple of 64"},
		{"unknown query", []string{"-query", "q99"}, `unknown query "q99"`},
		{"zero groups", []string{"-query", "q1", "-groups", "0"}, "-groups 0 outside 1..6"},
		{"negative groups", []string{"-query", "q1", "-groups", "-3"}, "-groups -3 outside"},
		{"too many groups", []string{"-query", "q1", "-groups", "7"}, "outside 1..6"},
		{"negative csv", []string{"-csv", "-1"}, "must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr %q does not contain %q", stderr, tc.want)
			}
			if !strings.Contains(stderr, "usage of tpchgen") {
				t.Fatalf("stderr %q lacks the usage block", stderr)
			}
		})
	}
}

func TestQ6Report(t *testing.T) {
	code, out, stderr := runCLI(t, "-n", "1024")
	if code != 0 {
		t.Fatalf("exit code %d (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"Q06 selectivity", "per-column selectivities"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestQ1Report(t *testing.T) {
	code, out, stderr := runCLI(t, "-n", "1024", "-query", "q1")
	if code != 0 {
		t.Fatalf("exit code %d (stderr: %s)", code, stderr)
	}
	for _, want := range []string{"Q01 filter selectivity", "sum_revenue", "avg_qty"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	// All six groups print by default, empty ones included.
	if got := strings.Count(out, "\n") - 3; got != 6 {
		t.Errorf("expected 6 group rows, output:\n%s", out)
	}
}

func TestQ1GroupsLimit(t *testing.T) {
	code, full, _ := runCLI(t, "-n", "1024", "-query", "q1")
	if code != 0 {
		t.Fatal("full report failed")
	}
	code, limited, _ := runCLI(t, "-n", "1024", "-query", "q1", "-groups", "2")
	if code != 0 {
		t.Fatal("limited report failed")
	}
	if !strings.HasPrefix(full, limited) {
		t.Errorf("-groups 2 is not a prefix of the full table:\n--- limited ---\n%s--- full ---\n%s", limited, full)
	}
	if strings.Count(limited, "\n") >= strings.Count(full, "\n") {
		t.Error("-groups 2 did not shorten the table")
	}
}

func TestCSVDumpCarriesGroupKeys(t *testing.T) {
	code, out, stderr := runCLI(t, "-n", "128", "-csv", "3")
	if code != 0 {
		t.Fatalf("exit code %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(out, "shipdate,discount,quantity,extendedprice,returnflag,linestatus") {
		t.Fatalf("CSV header lacks the group-key columns:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if got := strings.Count(last, ","); got != 5 {
		t.Fatalf("CSV row %q has %d commas, want 5", last, got)
	}
}

func TestDeterministicOutput(t *testing.T) {
	_, a, _ := runCLI(t, "-n", "1024", "-query", "q1")
	_, b, _ := runCLI(t, "-n", "1024", "-query", "q1")
	if a != b {
		t.Fatal("same flags produced different output")
	}
}
