// Command tpchgen inspects the deterministic lineitem generator: value
// distributions, per-query selectivities (Q06 selection or Q01
// aggregation), the Q01 per-group aggregate table, and optionally a CSV
// dump for external validation.
//
// Usage:
//
//	tpchgen [-n N] [-seed S] [-clustered] [-query q6|q1] [-groups K] [-csv K]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses and validates args, prints the requested inspection to
// stdout, and returns the process exit code. Factored out of main so
// the flag validation is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tpchgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 65536, "tuples to generate (multiple of 64)")
	seed := fs.Uint64("seed", 42, "generator seed")
	clustered := fs.Bool("clustered", false, "date-clustered table")
	queryName := fs.String("query", "q6", "workload to report: q6 (selection) or q1 (grouped aggregation)")
	groups := fs.Int("groups", hipe.NumGroups, "with -query q1: print the first K groups of the aggregate table")
	csv := fs.Int("csv", 0, "dump the first K tuples as CSV")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "tpchgen: "+format+"\n\nusage of tpchgen:\n", a...)
		fs.PrintDefaults()
		return 2
	}
	// Validate every flag combination up front.
	if fs.NArg() > 0 {
		return fail("unexpected argument %q (all options are flags)", fs.Arg(0))
	}
	if *n <= 0 || *n%64 != 0 {
		return fail("-n %d must be a positive multiple of 64", *n)
	}
	if *queryName != "q6" && *queryName != "q1" {
		return fail("unknown query %q (have q6, q1)", *queryName)
	}
	if *groups <= 0 || *groups > hipe.NumGroups {
		return fail("-groups %d outside 1..%d", *groups, hipe.NumGroups)
	}
	if *csv < 0 {
		return fail("-csv %d must not be negative", *csv)
	}

	var tab *hipe.Lineitem
	if *clustered {
		tab = hipe.GenerateClustered(*n, *seed, 10)
	} else {
		tab = hipe.Generate(*n, *seed)
	}
	fmt.Fprintf(stdout, "lineitem: %d tuples, seed %d, clustered=%v\n", *n, *seed, *clustered)

	switch *queryName {
	case "q6":
		reportQ6(stdout, tab)
	case "q1":
		reportQ1(stdout, tab, *groups)
	}

	if *csv > 0 {
		k := *csv
		if k > tab.N {
			k = tab.N
		}
		fmt.Fprintln(stdout, "shipdate,discount,quantity,extendedprice,returnflag,linestatus")
		for i := 0; i < k; i++ {
			fmt.Fprintf(stdout, "%d,%d,%d,%d,%d,%d\n",
				tab.ShipDate[i], tab.Discount[i], tab.Quantity[i],
				tab.ExtendedPrice[i], tab.ReturnFlag[i], tab.LineStatus[i])
		}
	}
	return 0
}

// reportQ6 prints the selection scan's selectivity profile.
func reportQ6(w io.Writer, tab *hipe.Lineitem) {
	q := hipe.DefaultQ06()
	fmt.Fprintf(w, "Q06 selectivity: %.4f (TPC-H reference ≈ 0.019)\n", hipe.Selectivity(tab, q))
	shipIn, discIn, qtyIn := 0, 0, 0
	for i := 0; i < tab.N; i++ {
		if tab.ShipDate[i] >= q.ShipLo && tab.ShipDate[i] < q.ShipHi {
			shipIn++
		}
		if tab.Discount[i] >= q.DiscLo && tab.Discount[i] <= q.DiscHi {
			discIn++
		}
		if tab.Quantity[i] < q.QtyHi {
			qtyIn++
		}
	}
	fmt.Fprintf(w, "per-column selectivities: shipdate %.3f, discount %.3f, quantity %.3f\n",
		float64(shipIn)/float64(tab.N), float64(discIn)/float64(tab.N), float64(qtyIn)/float64(tab.N))
}

// reportQ1 prints the aggregation workload's filter selectivity and the
// reference per-group aggregate table (averages derived from the sums).
func reportQ1(w io.Writer, tab *hipe.Lineitem, groups int) {
	q := hipe.DefaultQ01()
	res := hipe.ReferenceQ1(tab, q)
	fmt.Fprintf(w, "Q01 filter selectivity: %.4f (TPC-H reference ≈ 0.95)\n", hipe.SelectivityQ1(tab, q))
	fmt.Fprintf(w, "%-3s %-3s %10s %12s %16s %16s %10s\n",
		"rf", "ls", "count", "sum_qty", "sum_price", "sum_revenue", "avg_qty")
	rfNames := [...]string{"A", "R", "N"}
	lsNames := [...]string{"F", "O"}
	for g := 0; g < groups; g++ {
		agg := res.Groups[g]
		avgQty := 0.0
		if agg.Count > 0 {
			avgQty = float64(agg.SumQty) / float64(agg.Count)
		}
		fmt.Fprintf(w, "%-3s %-3s %10d %12d %16d %16d %10.2f\n",
			rfNames[agg.ReturnFlag], lsNames[agg.LineStatus],
			agg.Count, agg.SumQty, agg.SumPrice, agg.SumRevenue, avgQty)
	}
}
