// Command tpchgen inspects the deterministic lineitem generator: value
// distributions, Q06 selectivities (overall and per predicate column),
// and optionally a CSV dump for external validation.
//
// Usage:
//
//	tpchgen [-n N] [-seed S] [-clustered] [-csv K]
package main

import (
	"flag"
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpchgen: ")
	n := flag.Int("n", 65536, "tuples to generate (multiple of 64)")
	seed := flag.Uint64("seed", 42, "generator seed")
	clustered := flag.Bool("clustered", false, "date-clustered table")
	csv := flag.Int("csv", 0, "dump the first K tuples as CSV")
	flag.Parse()

	var tab *hipe.Lineitem
	if *clustered {
		tab = hipe.GenerateClustered(*n, *seed, 10)
	} else {
		tab = hipe.Generate(*n, *seed)
	}

	q := hipe.DefaultQ06()
	fmt.Printf("lineitem: %d tuples, seed %d, clustered=%v\n", *n, *seed, *clustered)
	fmt.Printf("Q06 selectivity: %.4f (TPC-H reference ≈ 0.019)\n", hipe.Selectivity(tab, q))

	shipIn, discIn, qtyIn := 0, 0, 0
	for i := 0; i < tab.N; i++ {
		if tab.ShipDate[i] >= q.ShipLo && tab.ShipDate[i] < q.ShipHi {
			shipIn++
		}
		if tab.Discount[i] >= q.DiscLo && tab.Discount[i] <= q.DiscHi {
			discIn++
		}
		if tab.Quantity[i] < q.QtyHi {
			qtyIn++
		}
	}
	fmt.Printf("per-column selectivities: shipdate %.3f, discount %.3f, quantity %.3f\n",
		float64(shipIn)/float64(tab.N), float64(discIn)/float64(tab.N), float64(qtyIn)/float64(tab.N))

	if *csv > 0 {
		k := *csv
		if k > tab.N {
			k = tab.N
		}
		fmt.Println("shipdate,discount,quantity,extendedprice")
		for i := 0; i < k; i++ {
			fmt.Printf("%d,%d,%d,%d\n", tab.ShipDate[i], tab.Discount[i], tab.Quantity[i], tab.ExtendedPrice[i])
		}
	}
}
