package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runBinary executes this command via `go run .` — flag validation runs
// before any simulation, so usage-error cases return immediately.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestQ1FlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative cadence", []string{"-q1-every", "-1"}, "must not be negative"},
		{"cut without cadence", []string{"-q1-cut", "100"}, "no effect without -q1-every"},
		{"cut past range", []string{"-q1-every", "2", "-q1-cut", "9999"}, "outside the generated"},
		{"negative cut", []string{"-q1-every", "2", "-q1-cut", "-3"}, "outside the generated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			// `go run` reports the child's failure as its own exit 1 and
			// appends the child's "exit status 2" line.
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

func TestMixedQ1LoadTestRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "8", "-tuples", "1024",
		"-q1-every", "3", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	if !strings.Contains(out, "requests") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

// TestArchValidationListsRegistry: an unknown -archs entry fails with a
// usage message that lists the registered backends (not a hard-coded
// string), including the planner's "auto".
func TestArchValidationListsRegistry(t *testing.T) {
	code, out := runBinary(t, "-archs", "riscv")
	if code == 0 {
		t.Fatalf("unknown arch exited 0\n%s", out)
	}
	for _, want := range []string{`unknown arch "riscv"`, "x86", "hmc", "hive", "hipe", "auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output %q does not mention %q", out, want)
		}
	}
	if code, out := runBinary(t, "-noise", "-1"); code == 0 || !strings.Contains(out, "must not be negative") {
		t.Fatalf("negative -noise not rejected\n%s", out)
	}
}

// TestAutoServeRuns: -archs auto routes every request and exports the
// routing-decision columns.
func TestAutoServeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "6", "-tuples", "1024",
		"-archs", "auto", "-clustered", "-quiet", "-csv", "-")
	if code != 0 {
		t.Fatalf("auto serve failed (%d)\n%s", code, out)
	}
	for _, want := range []string{"routed", "est_selectivity", "est_x86_cycles", "est_hipe_cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("auto serve CSV lacks %q\n%s", want, out)
		}
	}
}

// TestFleetFlagValidation: the fleet/admission/trace flag grammar
// fails fast with usage, before any simulation runs.
func TestFleetFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"auto pool", []string{"-pools", "hipe,auto"}, "must pin a concrete backend"},
		{"unknown pool", []string{"-pools", "riscv"}, `unknown pool arch "riscv"`},
		{"fixed arch without pool", []string{"-pools", "hipe", "-archs", "x86"}, "no -pools entry pins it"},
		{"classes without pools", []string{"-classes", "a:10:5"}, "needs -pools"},
		{"bad class triple", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:10"}, "not name:slo"},
		{"bad class slo", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:x:5"}, "bad SLO"},
		{"negative patience", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:10:-5"}, "bad patience"},
		{"shed without classes", []string{"-pools", "hipe", "-archs", "auto", "-shed", "-mode", "open"}, "-shed needs -classes"},
		{"shed closed", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:10:5", "-shed", "-mode", "closed"}, "-shed needs -mode open"},
		{"trace closed", []string{"-trace", "-mode", "closed"}, "-trace needs -mode open"},
		{"burst without trace", []string{"-mode", "open", "-burst", "4"}, "need -trace"},
		{"amp without period", []string{"-mode", "open", "-trace", "-trace-amp", "0.5"}, "positive -trace-period-us"},
		{"amp at one", []string{"-mode", "open", "-trace", "-trace-period-us", "10", "-trace-amp", "1"}, "must be in [0, 1)"},
		{"burst below one", []string{"-mode", "open", "-trace", "-burst", "0.5"}, "multiplier >= 1"},
		{"burst without durations", []string{"-mode", "open", "-trace", "-burst", "4"}, "-burst-on-us"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestFleetLoadTestRuns drives a small replicated fleet with classes,
// shedding and trace arrivals end to end.
func TestFleetLoadTestRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "12", "-tuples", "1024",
		"-mode", "open", "-qps", "400000",
		"-pools", "hipe,x86", "-archs", "auto",
		"-classes", "batch:400:50,rt:200:0", "-shed",
		"-trace", "-trace-period-us", "40", "-trace-amp", "0.5",
		"-burst", "4", "-burst-on-us", "5", "-burst-off-us", "15",
		"-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	for _, want := range []string{"pool 0", "pool 1", "class 0 batch", "class 1 rt", "SLO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
