package main

import (
	"os/exec"
	"strings"
	"testing"
)

// runBinary executes this command via `go run .` — flag validation runs
// before any simulation, so usage-error cases return immediately.
func runBinary(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestQ1FlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative cadence", []string{"-q1-every", "-1"}, "must not be negative"},
		{"cut without cadence", []string{"-q1-cut", "100"}, "no effect without -q1-every"},
		{"cut past range", []string{"-q1-every", "2", "-q1-cut", "9999"}, "outside the generated"},
		{"negative cut", []string{"-q1-every", "2", "-q1-cut", "-3"}, "outside the generated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			// `go run` reports the child's failure as its own exit 1 and
			// appends the child's "exit status 2" line.
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

func TestMixedQ1LoadTestRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "8", "-tuples", "1024",
		"-q1-every", "3", "-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	if !strings.Contains(out, "requests") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

// TestArchValidationListsRegistry: an unknown -archs entry fails with a
// usage message that lists the registered backends (not a hard-coded
// string), including the planner's "auto".
func TestArchValidationListsRegistry(t *testing.T) {
	code, out := runBinary(t, "-archs", "riscv")
	if code == 0 {
		t.Fatalf("unknown arch exited 0\n%s", out)
	}
	for _, want := range []string{`unknown arch "riscv"`, "x86", "hmc", "hive", "hipe", "auto"} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output %q does not mention %q", out, want)
		}
	}
	if code, out := runBinary(t, "-noise", "-1"); code == 0 || !strings.Contains(out, "must not be negative") {
		t.Fatalf("negative -noise not rejected\n%s", out)
	}
}

// TestAutoServeRuns: -archs auto routes every request and exports the
// routing-decision columns.
func TestAutoServeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "6", "-tuples", "1024",
		"-archs", "auto", "-clustered", "-quiet", "-csv", "-")
	if code != 0 {
		t.Fatalf("auto serve failed (%d)\n%s", code, out)
	}
	for _, want := range []string{"routed", "est_selectivity", "est_x86_cycles", "est_hipe_cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("auto serve CSV lacks %q\n%s", want, out)
		}
	}
}

// TestFleetFlagValidation: the fleet/admission/trace flag grammar
// fails fast with usage, before any simulation runs.
func TestFleetFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"auto pool", []string{"-pools", "hipe,auto"}, "must pin a concrete backend"},
		{"unknown pool", []string{"-pools", "riscv"}, `unknown pool arch "riscv"`},
		{"fixed arch without pool", []string{"-pools", "hipe", "-archs", "x86"}, "no -pools entry pins it"},
		{"classes without pools", []string{"-classes", "a:10:5"}, "needs -pools"},
		{"bad class triple", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:10"}, "not name:slo"},
		{"bad class slo", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:x:5"}, "bad SLO"},
		{"negative patience", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:10:-5"}, "bad patience"},
		{"shed without classes", []string{"-pools", "hipe", "-archs", "auto", "-shed", "-mode", "open"}, "-shed needs -classes"},
		{"shed closed", []string{"-pools", "hipe", "-archs", "auto", "-classes", "a:10:5", "-shed", "-mode", "closed"}, "-shed needs -mode open"},
		{"trace closed", []string{"-trace", "-mode", "closed"}, "-trace needs -mode open"},
		{"burst without trace", []string{"-mode", "open", "-burst", "4"}, "need -trace"},
		{"amp without period", []string{"-mode", "open", "-trace", "-trace-amp", "0.5"}, "positive -trace-period-us"},
		{"amp at one", []string{"-mode", "open", "-trace", "-trace-period-us", "10", "-trace-amp", "1"}, "must be in [0, 1)"},
		{"burst below one", []string{"-mode", "open", "-trace", "-burst", "0.5"}, "multiplier >= 1"},
		{"burst without durations", []string{"-mode", "open", "-trace", "-burst", "4"}, "-burst-on-us"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestExecFlagValidation pins the CLI-level exec-mode refusals: unknown
// modes list the registry, and estimate mode rejects the outputs it
// cannot produce before anything runs.
func TestExecFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown mode", []string{"-exec", "psychic"}, `unknown exec mode "psychic"`},
		{"mode choices listed", []string{"-exec", "psychic"}, "exact, estimate"},
		{"estimate with counters", []string{"-exec", "estimate", "-counters"}, "cannot produce machine counters"},
		{"estimate with trace json", []string{"-exec", "estimate", "-trace-json", "t.json"}, "cannot produce machine-replay traces"},
		{"estimate with span csv", []string{"-exec", "estimate", "-spans-csv", "s.csv"}, "cannot produce machine-replay traces"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestGroupedUsage pins the subsystem grouping of the help text: every
// group header prints, and no flag has fallen out of the groups into
// the trailing "ungrouped" section.
func TestGroupedUsage(t *testing.T) {
	// flag's ExitOnError treats -h as success, so only the output matters.
	_, out := runBinary(t, "-h")
	for _, want := range []string{
		"serving:", "table:", "fleet:", "faults:", "recovery:", "adaptive:",
		"arrivals:", "execution:", "observability:", "export:", "profiling:",
		"-exec",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ungrouped") {
		t.Errorf("a flag escaped the subsystem groups:\n%s", out)
	}
	if strings.Contains(out, "unregistered flag") {
		t.Errorf("a group lists a flag that is not registered:\n%s", out)
	}
}

// TestEstimateServeRuns: -exec estimate serves the stream on cost-model
// service times and marks the report and CSV export.
func TestEstimateServeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "8", "-tuples", "1024",
		"-archs", "auto", "-exec", "estimate", "-quiet", "-csv", "-")
	if code != 0 {
		t.Fatalf("estimate serve failed (%d)\n%s", code, out)
	}
	if !strings.Contains(out, "exec_mode") || !strings.Contains(out, "estimate") {
		t.Fatalf("estimate serve CSV lacks the exec_mode marker\n%s", out)
	}
}

// TestFleetLoadTestRuns drives a small replicated fleet with classes,
// shedding and trace arrivals end to end.
func TestFleetLoadTestRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "12", "-tuples", "1024",
		"-mode", "open", "-qps", "400000",
		"-pools", "hipe,x86", "-archs", "auto",
		"-classes", "batch:400:50,rt:200:0", "-shed",
		"-trace", "-trace-period-us", "40", "-trace-amp", "0.5",
		"-burst", "4", "-burst-on-us", "5", "-burst-off-us", "15",
		"-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	for _, want := range []string{"pool 0", "pool 1", "class 0 batch", "class 1 rt", "SLO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestFaultFlagValidation: the fault/recovery flag grammar — including
// NaN, Inf and negative durations — dies with a usage error before any
// simulation runs.
func TestFaultFlagValidation(t *testing.T) {
	pools := []string{"-pools", "hipe,hipe", "-archs", "auto"}
	withPools := func(args ...string) []string { return append(append([]string{}, pools...), args...) }
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"faults without pools", []string{"-crash-every-us", "100", "-crash-down-us", "20"}, "need -pools"},
		{"recovery without pools", []string{"-retries", "2"}, "need -pools"},
		{"negative crash mean", withPools("-crash-every-us", "-5", "-crash-down-us", "10"), "non-negative finite duration"},
		{"NaN crash mean", withPools("-crash-every-us", "NaN", "-crash-down-us", "10"), "non-negative finite duration"},
		{"Inf outage", withPools("-crash-every-us", "100", "-crash-down-us", "+Inf"), "non-negative finite duration"},
		{"NaN timeout", withPools("-timeout-us", "NaN"), "non-negative finite duration"},
		{"negative hedge", withPools("-hedge-us", "-3"), "non-negative finite duration"},
		{"crash mean without outage", withPools("-crash-every-us", "100"), "needs a positive -crash-down-us"},
		{"outage without mean", withPools("-crash-down-us", "100"), "no effect without -crash-every-us"},
		{"straggle mean alone", withPools("-straggle-every-us", "100"), "needs -straggle-for-us and -straggle-factor"},
		{"straggle factor alone", withPools("-straggle-factor", "3"), "need -straggle-every-us"},
		{"NaN straggle factor", withPools("-straggle-every-us", "10", "-straggle-for-us", "5", "-straggle-factor", "NaN"), "finite multiplier > 1"},
		{"sub-unity straggle factor", withPools("-straggle-every-us", "10", "-straggle-for-us", "5", "-straggle-factor", "0.5"), "finite multiplier > 1"},
		{"stall mean alone", withPools("-stall-every-us", "100"), "needs a positive -stall-for-us"},
		{"stall bound alone", withPools("-stall-max-us", "50"), "need -stall-every-us"},
		{"stall bound below mean", withPools("-stall-every-us", "100", "-stall-for-us", "50", "-stall-max-us", "10"), "below -stall-for-us"},
		{"negative retries", withPools("-retries", "-1"), "must not be negative"},
		{"backoff without retries", withPools("-retry-backoff-us", "10"), "positive -retries budget"},
		{"backoff cap below base", withPools("-retries", "2", "-retry-backoff-us", "100", "-retry-backoff-cap-us", "10"), "below -retry-backoff-us"},
		{"bad crash grammar", withPools("-crash", "1:40"), "not pool:at_µs:down_µs"},
		{"bad crash pool", withPools("-crash", "x:40:120"), "bad pool"},
		{"NaN crash start", withPools("-crash", "1:NaN:120"), "bad start"},
		{"zero crash outage", withPools("-crash", "1:40:0"), "bad outage"},
		{"crash outside fleet", withPools("-crash", "7:40:120"), "outside the 2-pool fleet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestAdaptiveFlagValidation: the adaptive-routing flag grammar fails
// fast with usage, before any simulation runs.
func TestAdaptiveFlagValidation(t *testing.T) {
	pools := []string{"-pools", "hipe,x86", "-archs", "auto"}
	withPools := func(args ...string) []string { return append(append([]string{}, pools...), args...) }
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"adaptive without pools", []string{"-adaptive"}, "-adaptive needs -pools"},
		{"explore without adaptive", withPools("-explore-pct", "5"), "need -adaptive"},
		{"halflife without adaptive", withPools("-obs-halflife", "16"), "need -adaptive"},
		{"buckets without adaptive", withPools("-buckets", "4"), "need -adaptive"},
		{"explore at 100", withPools("-adaptive", "-explore-pct", "100"), "must be in [0, 100)"},
		{"negative explore", withPools("-adaptive", "-explore-pct", "-1"), "must be in [0, 100)"},
		{"NaN explore", withPools("-adaptive", "-explore-pct", "NaN"), "must be in [0, 100)"},
		{"negative halflife", withPools("-adaptive", "-obs-halflife", "-2"), "non-negative finite sample count"},
		{"Inf halflife", withPools("-adaptive", "-obs-halflife", "+Inf"), "non-negative finite sample count"},
		{"too many buckets", withPools("-adaptive", "-buckets", "65"), "outside 0..64"},
		{"negative buckets", withPools("-adaptive", "-buckets", "-1"), "outside 0..64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := runBinary(t, tc.args...)
			if code == 0 {
				t.Fatalf("usage error exited 0\n%s", out)
			}
			if !strings.Contains(out, "exit status 2") {
				t.Fatalf("child did not exit with usage status 2\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output %q does not contain %q", out, tc.want)
			}
		})
	}
}

// TestAdaptiveFleetRuns drives a feedback-routed fleet end to end and
// checks the adaptive provenance columns reach the CSV export.
func TestAdaptiveFleetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "12", "-tuples", "1024",
		"-mode", "open", "-qps", "400000", "-clustered",
		"-pools", "hipe,x86", "-archs", "auto",
		"-adaptive", "-explore-pct", "10", "-obs-halflife", "4",
		"-quiet", "-csv", "-")
	if code != 0 {
		t.Fatalf("adaptive serve failed (%d)\n%s", code, out)
	}
	for _, want := range []string{"route_mode", "obs_cycles", "bucket_samples", "explored", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("adaptive serve CSV lacks %q\n%s", want, out)
		}
	}
}

// TestFaultedFleetRuns drives a crashing, straggling fleet with the
// full recovery policy end to end and checks the degraded-mode summary
// and fault counters surface.
func TestFaultedFleetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real load test")
	}
	code, out := runBinary(t,
		"-shards", "2", "-requests", "16", "-tuples", "1024",
		"-mode", "open", "-qps", "400000",
		"-pools", "hipe,hipe", "-archs", "auto",
		"-classes", "batch:400:50,rt:200:0",
		"-crash", "1:40:120", "-crash-every-us", "500", "-crash-down-us", "150",
		"-straggle-every-us", "300", "-straggle-for-us", "100", "-straggle-factor", "3",
		"-retries", "2", "-retry-backoff-us", "5", "-timeout-us", "400",
		"-hedge-us", "150", "-failover",
		"-quiet")
	if code != 0 {
		t.Fatalf("exit code %d\n%s", code, out)
	}
	for _, want := range []string{"faults", "recovery", "SLO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
