// Command hipe-serve load-tests a sharded fleet of simulated HMC
// machines: it partitions a lineitem table across N shards, generates a
// seeded mixed-selectivity Q06 request stream, drives it open-loop (a
// Poisson arrival process at a target QPS) or closed-loop (a fixed
// client count), and reports throughput, latency quantiles and
// per-shard utilisation. Reports are byte-identical at any executor
// worker count; CSV/JSON exports follow hipe-sweep's conventions.
//
// Usage:
//
//	hipe-serve -shards 8 -requests 64 -mode open -qps 20000 \
//	           [-archs x86,hmc,hive,hipe|auto] [-aggregate] \
//	           [-q1-every 4] [-q1-cut 2436] [-clustered] [-noise 10] \
//	           [-duration-ms 0] [-concurrency 4] \
//	           [-pools hipe,hipe,x86] [-classes "batch:400:100,rt:200:0"] [-shed] \
//	           [-fault-seed 7] [-crash-every-us 500] [-crash-down-us 150] \
//	           [-crash "1:40:120"] [-straggle-every-us 300] [-straggle-for-us 100] \
//	           [-straggle-factor 3] [-stall-every-us 400] [-stall-for-us 20] [-stall-max-us 60] \
//	           [-retries 2] [-retry-backoff-us 5] [-retry-backoff-cap-us 40] \
//	           [-timeout-us 400] [-hedge-us 150] [-failover] \
//	           [-adaptive] [-explore-pct 1] [-obs-halflife 8] [-buckets 8] [-adapt-seed 11] \
//	           [-trace] [-trace-period-us 2000] [-trace-amp 0.5] \
//	           [-burst 4] [-burst-on-us 200] [-burst-off-us 600] \
//	           [-tuples 16384] [-seed 42] [-stream-seed 1] \
//	           [-exec exact|estimate] [-workers N] [-csv out.csv] [-json out.json] \
//	           [-counters] [-trace-json trace.json] [-spans-csv spans.csv] \
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace-out exec.trace]
//
// -exec selects the execution mode. "exact" (the default) replays every
// shard on a full machine model. "estimate" prices each (plan, shard)
// with the analytic cost model instead — answers stay exact (they come
// from the reference evaluators), only service times are approximate,
// with the bounded error documented in docs/PERFORMANCE.md — and the
// report gains an exec_mode marker and CSV column. Estimate mode cannot
// produce machine counters or machine-replay traces, so -exec estimate
// with -counters, -trace-json or -spans-csv is refused.
//
// -pools engages the replicated fleet: each entry is one complete
// replica of all shards pinned to that backend family, and every
// request is routed to the (replica, backend) pair with the lowest
// predicted critical path plus current queue depth. -classes declares
// admission classes as name:slo_µs:patience_µs triples (patience 0 =
// never shed); with -shed, overload refuses work whose class patience
// even the least-loaded replica exceeds — lowest patience sheds first.
// Fleet reports add per-pool and per-class (SLO-attainment) rows.
//
// The fault flags inject a deterministic, seeded fault schedule into a
// fleet run: stochastic replica crashes (-crash-every-us/-crash-down-us)
// with recovery, scheduled outages (-crash pool:at_µs:down_µs triples),
// per-shard straggler slowdowns (-straggle-*) and bounded transient
// stalls (-stall-*). The recovery flags drive the fleet's response:
// per-attempt timeouts (-timeout-us), capped exponential-backoff
// retries (-retries/-retry-backoff-us/-retry-backoff-cap-us), hedged
// second attempts (-hedge-us) and health-aware failover routing
// (-failover). A request whose retry budget runs out degrades to a
// partial answer with exact coverage and relative-error columns.
// Faulted runs stay byte-identical at any -workers count; fault-free
// runs are byte-identical to pre-fault builds.
//
// -adaptive closes the loop between observed replay cycles and the
// routing planner on a fleet run: each completed request's service
// cycles feed a per-(kind, backend, selectivity-bucket) EWMA, and
// routing blends that running average with the analytic prior —
// prior-weighted while a bucket is cold, observation-dominated once it
// has samples. A deterministic exploration floor (-explore-pct, drawn
// from the -adapt-seed decorrelated stream) keeps sampling backends
// the blend would otherwise starve. Adaptive picks add route_mode,
// obs_cycles, bucket_samples and explored CSV columns; the replay is
// single-threaded over virtual time, so adaptive runs stay
// byte-identical at any -workers count.
//
// -trace swaps the open loop's Poisson process for a trace-driven
// non-homogeneous one: -trace-period-us/-trace-amp add a diurnal
// sinusoid, -burst/-burst-on-us/-burst-off-us an on/off burst process.
// Still seeded and exactly replayable.
//
// -q1-every N mixes TPC-H Q01-style grouped aggregations into the
// stream (every Nth request): shards answer with per-group partial
// aggregates that recompose into the whole-table group table, verified
// against the unsharded reference evaluator.
//
// -archs auto engages the adaptive planner: each request is routed to
// the backend the analytic cost model predicts fastest for the
// request's selectivity profile on the served table. Routed reports
// carry extra routing-decision columns (the profiled selectivity and
// every candidate backend's estimated cycles) so each pick is
// auditable; routing is deterministic at any worker count. Pair with
// -clustered to serve the date-clustered layout where selectivity
// actually moves the per-backend costs.
//
// Observability is off by default and provably free when off. -counters
// snapshots the machine counter registry (cache hits, DRAM activates,
// link packets, squashed predicated ops, event-engine lanes…) into the
// summary and JSON export; totals sum each distinct shard simulation
// once. -trace-json/-spans-csv record every request's virtual-time span
// tree — admission, routing decision, per-shard machine replay,
// scatter-gather merge — and export it as Chrome trace_event JSON
// (loadable in Perfetto; 1 simulated cycle renders as 1 µs) or a flat
// span CSV. Both are byte-identical at any -workers count.
// -cpuprofile/-memprofile/-trace-out profile the simulator process
// itself (pprof CPU/heap, runtime execution trace) over the load test.
//
// Time is simulated: QPS and milliseconds convert to cycles at the
// Table I 2 GHz core clock; results are exact in cycles.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	hipe "github.com/hipe-sim/hipe"
	"github.com/hipe-sim/hipe/internal/cliutil"
)

// flagGroups files every hipe-serve flag under a subsystem; usage
// output prints group by group instead of one ~50-flag alphabetical
// list. main_test.go pins that no flag is left ungrouped.
var flagGroups = []cliutil.FlagGroup{
	{Title: "serving", Flags: []string{"shards", "requests", "mode", "qps", "duration-ms", "concurrency", "archs", "aggregate", "q1-every", "q1-cut"}},
	{Title: "table", Flags: []string{"tuples", "seed", "stream-seed", "clustered", "noise"}},
	{Title: "fleet", Flags: []string{"pools", "classes", "shed"}},
	{Title: "faults", Flags: []string{"fault-seed", "crash-every-us", "crash-down-us", "crash", "straggle-every-us", "straggle-for-us", "straggle-factor", "stall-every-us", "stall-for-us", "stall-max-us"}},
	{Title: "recovery", Flags: []string{"retries", "retry-backoff-us", "retry-backoff-cap-us", "timeout-us", "hedge-us", "failover"}},
	{Title: "adaptive", Flags: []string{"adaptive", "explore-pct", "obs-halflife", "buckets", "adapt-seed"}},
	{Title: "arrivals", Flags: []string{"trace", "trace-period-us", "trace-amp", "burst", "burst-on-us", "burst-off-us"}},
	{Title: "execution", Flags: []string{"exec", "workers", "quiet"}},
	{Title: "observability", Flags: []string{"counters", "trace-json", "spans-csv"}},
	{Title: "export", Flags: []string{"csv", "json"}},
	{Title: "profiling", Flags: []string{"cpuprofile", "memprofile", "trace-out"}},
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage of hipe-serve:")
	cliutil.PrintGroupedUsage(os.Stderr, flagGroups, flag.CommandLine)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hipe-serve: ")
	shards := flag.Int("shards", 4, "shard count (each shard is one simulated machine)")
	requests := flag.Int("requests", 32, "request-stream length")
	mode := flag.String("mode", "closed", "load discipline: open or closed")
	qps := flag.Float64("qps", 10000, "open loop: offered load in queries/second at the 2 GHz nominal clock")
	durationMS := flag.Float64("duration-ms", 0, "open loop: simulated duration bound in milliseconds (0 = unlimited)")
	concurrency := flag.Int("concurrency", 4, "closed loop: client count")
	archs := flag.String("archs", "x86,hmc,hive,hipe", "comma list of architectures in the mix; \"auto\" routes each request to the predicted-fastest backend")
	aggregate := flag.Bool("aggregate", false, "upgrade HIPE requests to in-memory Q06 aggregation")
	clustered := flag.Bool("clustered", false, "serve a date-clustered (append-ordered) table — the layout where selectivity-adaptive routing pays off")
	noise := flag.Int("noise", 10, "clustering noise in days (with -clustered)")
	pools := flag.String("pools", "", "comma list of replica-pool architectures (e.g. hipe,hipe,x86): serve through a replicated fleet with queue-aware routing")
	classesFlag := flag.String("classes", "", "admission classes as name:slo_µs:patience_µs triples (needs -pools; patience 0 = never shed)")
	shed := flag.Bool("shed", false, "enable admission control: shed low-patience classes under overload (needs -classes, open mode)")
	faultSeed := flag.Uint64("fault-seed", 7, "fault-injection seed: equal seeds replay the identical fault timeline")
	crashEveryUS := flag.Float64("crash-every-us", 0, "mean up-time between stochastic replica crashes in simulated µs (needs -pools; 0 disables)")
	crashDownUS := flag.Float64("crash-down-us", 0, "mean crash outage duration in simulated µs (needs -crash-every-us)")
	crashesFlag := flag.String("crash", "", "scheduled outages as pool:at_µs:down_µs triples (needs -pools)")
	straggleEveryUS := flag.Float64("straggle-every-us", 0, "mean healthy time between per-shard straggler episodes in simulated µs (needs -pools; 0 disables)")
	straggleForUS := flag.Float64("straggle-for-us", 0, "mean straggler episode duration in simulated µs (needs -straggle-every-us)")
	straggleFactor := flag.Float64("straggle-factor", 0, "service-cycle multiplier during straggler episodes, finite and > 1 (needs -straggle-every-us)")
	stallEveryUS := flag.Float64("stall-every-us", 0, "mean quiet time between per-shard transient stalls in simulated µs (needs -pools; 0 disables)")
	stallForUS := flag.Float64("stall-for-us", 0, "mean stall duration in simulated µs (needs -stall-every-us)")
	stallMaxUS := flag.Float64("stall-max-us", 0, "hard per-stall duration bound in simulated µs (0 = 4x -stall-for-us)")
	retries := flag.Int("retries", 0, "per-request retry budget after a failed attempt (needs -pools)")
	retryBackoffUS := flag.Float64("retry-backoff-us", 0, "delay before the first retry in simulated µs, doubling per retry (needs -retries)")
	retryBackoffCapUS := flag.Float64("retry-backoff-cap-us", 0, "backoff doubling cap in simulated µs (0 = uncapped; needs -retries)")
	timeoutUS := flag.Float64("timeout-us", 0, "per-attempt timeout in simulated µs, applied to every class (needs -pools; 0 = attempts never time out)")
	hedgeUS := flag.Float64("hedge-us", 0, "hedged-request delay in simulated µs, applied to every class (needs -pools; 0 = no hedging)")
	failover := flag.Bool("failover", false, "health-aware failover routing: exclude down replicas, penalise observed stragglers (needs -pools)")
	adaptive := flag.Bool("adaptive", false, "feedback-driven routing: blend observed replay cycles into the routing estimates, with a deterministic exploration floor (needs -pools)")
	explorePct := flag.Float64("explore-pct", 0, "adaptive exploration floor as a percentage of routed requests, below 100 (0 = the 1% default; needs -adaptive)")
	obsHalfLife := flag.Float64("obs-halflife", 0, "adaptive observation EWMA half-life in samples (0 = the 8-sample default; needs -adaptive)")
	buckets := flag.Int("buckets", 0, "adaptive selectivity-bucket count per (kind, backend) pair, up to 64 (0 = the 8-bucket default; needs -adaptive)")
	adaptSeed := flag.Uint64("adapt-seed", 11, "adaptive exploration-stream seed: equal seeds replay the identical exploration draws")
	traceMode := flag.Bool("trace", false, "open loop: trace-driven non-homogeneous arrivals instead of Poisson")
	tracePeriodUS := flag.Float64("trace-period-us", 0, "diurnal modulation period in simulated µs (needs -trace)")
	traceAmp := flag.Float64("trace-amp", 0, "diurnal amplitude in [0,1) (needs -trace and -trace-period-us)")
	burst := flag.Float64("burst", 0, "burst rate multiplier >= 1 (needs -trace; 0 disables bursts)")
	burstOnUS := flag.Float64("burst-on-us", 0, "mean burst duration in simulated µs (needs -burst)")
	burstOffUS := flag.Float64("burst-off-us", 0, "mean quiet duration in simulated µs (needs -burst)")
	q1every := flag.Int("q1-every", 0, "turn every Nth request into a Q01 grouped aggregation (0 = pure Q06 stream)")
	q1cut := flag.Int("q1-cut", 0, "Q01 shipdate cutoff in days (0 = the TPC-H 90-day default; needs -q1-every)")
	tuples := flag.Int("tuples", 16384, "lineitem row count (multiple of 64)")
	seed := flag.Uint64("seed", 42, "table generator seed")
	streamSeed := flag.Uint64("stream-seed", 1, "request-stream and arrival-process seed")
	execMode := flag.String("exec", "exact", "execution mode: exact replays every shard machine, estimate prices shards with the cost model (see docs/PERFORMANCE.md)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "executor pool size (defaults to GOMAXPROCS); never changes results")
	csvPath := flag.String("csv", "", "write per-request traces as CSV to this path (- for stdout)")
	jsonPath := flag.String("json", "", "write the full report as JSON to this path (- for stdout)")
	counters := flag.Bool("counters", false, "capture machine counters: the summary gains a counters section and the JSON export Counters fields (totals sum each distinct shard simulation once)")
	traceJSON := flag.String("trace-json", "", "record the virtual-time request trace and write Chrome trace_event JSON to this path (- for stdout; load in Perfetto)")
	spansCSV := flag.String("spans-csv", "", "record the virtual-time request trace and write the flat span table as CSV to this path (- for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the load test to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (snapshotted after the load test) to this path")
	traceOut := flag.String("trace-out", "", "write a runtime execution trace of the load test to this path")
	quiet := flag.Bool("quiet", false, "suppress progress on stderr")
	flag.Usage = usage
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hipe-serve: "+format+"\n\n", args...)
		usage()
		os.Exit(2)
	}
	// Validate every flag combination up front: a malformed run must
	// die with usage, not after minutes of simulation.
	if flag.NArg() > 0 {
		fail("unexpected argument %q (all options are flags)", flag.Arg(0))
	}
	if *shards <= 0 {
		fail("-shards %d must be positive", *shards)
	}
	if *requests <= 0 {
		fail("-requests %d must be positive", *requests)
	}
	if *tuples <= 0 || *tuples%64 != 0 {
		fail("-tuples %d must be a positive multiple of 64", *tuples)
	}
	if *tuples < *shards*64 {
		fail("-shards %d needs at least %d tuples (64 per shard)", *shards, *shards*64)
	}
	if *mode != "open" && *mode != "closed" {
		fail("-mode %q must be open or closed", *mode)
	}
	if *mode == "open" && !(*qps > 0 && !math.IsInf(*qps, 1)) {
		// The negated form also rejects NaN, which compares false
		// against everything and would otherwise sail through a
		// `*qps <= 0` check into the cycle conversion.
		fail("-qps %g must be a positive finite rate", *qps)
	}
	if *mode == "closed" && *concurrency <= 0 {
		fail("-concurrency %d must be positive", *concurrency)
	}
	if *workers <= 0 {
		fail("-workers %d must be positive", *workers)
	}
	if *q1every < 0 {
		fail("-q1-every %d must not be negative", *q1every)
	}
	if *q1cut < 0 || *q1cut >= hipe.ShipDateDays {
		fail("-q1-cut %d outside the generated 0..%d day range", *q1cut, hipe.ShipDateDays-1)
	}
	if *q1cut > 0 && *q1every == 0 {
		fail("-q1-cut %d has no effect without -q1-every", *q1cut)
	}
	if !(*durationMS >= 0) || math.IsInf(*durationMS, 1) {
		fail("-duration-ms %g must be a non-negative finite duration", *durationMS)
	}
	stdoutClaims := 0
	for _, p := range []string{*csvPath, *jsonPath, *traceJSON, *spansCSV} {
		if p == "-" {
			stdoutClaims++
		}
	}
	if stdoutClaims > 1 {
		fail("two exports both claim stdout; pick one")
	}
	if *noise < 0 {
		fail("-noise %d must not be negative", *noise)
	}
	emode, ok := hipe.ParseExecMode(*execMode)
	if !ok {
		fail("unknown exec mode %q (have %s)", *execMode, hipe.ExecModeChoices())
	}
	if emode == hipe.ExecEstimate {
		if *counters {
			fail("-exec estimate cannot produce machine counters (µop-level counters need exact simulation)")
		}
		if *traceJSON != "" || *spansCSV != "" {
			fail("-exec estimate cannot produce machine-replay traces (spans need exact simulation)")
		}
	}
	// Architectures validate against the backend registry, so the error
	// message tracks whatever backends are actually registered.
	var mix []hipe.Arch
	for _, s := range strings.Split(*archs, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		a, ok := hipe.ParseArch(s)
		if !ok {
			fail("unknown arch %q (have %s)", s, hipe.ArchChoices())
		}
		mix = append(mix, a)
	}
	if len(mix) == 0 {
		fail("-archs selects no architecture")
	}
	// Fleet flags: replica pools, admission classes, trace arrivals.
	var poolArchs []hipe.Arch
	for _, s := range strings.Split(*pools, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		a, ok := hipe.ParseArch(s)
		if !ok {
			fail("unknown pool arch %q (have %s)", s, hipe.ArchChoices())
		}
		if a == hipe.ArchAuto {
			fail("-pools entries must pin a concrete backend, not auto")
		}
		poolArchs = append(poolArchs, a)
	}
	if len(poolArchs) > 0 {
		// Every fixed architecture in the stream needs a pool to land on.
		for _, a := range mix {
			if a == hipe.ArchAuto {
				continue
			}
			found := false
			for _, p := range poolArchs {
				found = found || p == a
			}
			if !found {
				fail("-archs includes %s but no -pools entry pins it", a)
			}
		}
	}
	classes, err := parseClasses(*classesFlag)
	if err != nil {
		fail("%v", err)
	}
	if len(classes) > 0 && len(poolArchs) == 0 {
		fail("-classes needs -pools (admission control is a fleet feature)")
	}
	if *shed && len(classes) == 0 {
		fail("-shed needs -classes")
	}
	if *shed && *mode != "open" {
		fail("-shed needs -mode open")
	}
	if *traceMode && *mode != "open" {
		fail("-trace needs -mode open")
	}
	if !*traceMode && (*tracePeriodUS != 0 || *traceAmp != 0 || *burst != 0 || *burstOnUS != 0 || *burstOffUS != 0) {
		fail("trace knobs (-trace-period-us, -trace-amp, -burst, -burst-on-us, -burst-off-us) need -trace")
	}
	if *traceAmp < 0 || *traceAmp >= 1 || math.IsNaN(*traceAmp) {
		fail("-trace-amp %g must be in [0, 1)", *traceAmp)
	}
	if *traceAmp > 0 && !(*tracePeriodUS > 0) {
		fail("-trace-amp needs a positive -trace-period-us")
	}
	if *burst != 0 && (!(*burst >= 1) || math.IsInf(*burst, 1)) {
		fail("-burst %g must be a finite multiplier >= 1 (or 0 to disable)", *burst)
	}
	if *burst > 1 && (!(*burstOnUS > 0) || !(*burstOffUS > 0)) {
		fail("-burst needs positive -burst-on-us and -burst-off-us")
	}
	for _, v := range []struct {
		name string
		val  float64
	}{{"-trace-period-us", *tracePeriodUS}, {"-burst-on-us", *burstOnUS}, {"-burst-off-us", *burstOffUS}} {
		if !(v.val >= 0) || math.IsInf(v.val, 1) {
			fail("%s %g must be a non-negative finite duration", v.name, v.val)
		}
	}
	// Fault-injection and recovery flags. The negated comparisons also
	// reject NaN, which compares false against everything and would
	// otherwise sail through into the cycle conversions.
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"-crash-every-us", *crashEveryUS}, {"-crash-down-us", *crashDownUS},
		{"-straggle-every-us", *straggleEveryUS}, {"-straggle-for-us", *straggleForUS},
		{"-stall-every-us", *stallEveryUS}, {"-stall-for-us", *stallForUS}, {"-stall-max-us", *stallMaxUS},
		{"-retry-backoff-us", *retryBackoffUS}, {"-retry-backoff-cap-us", *retryBackoffCapUS},
		{"-timeout-us", *timeoutUS}, {"-hedge-us", *hedgeUS},
	} {
		if !(v.val >= 0) || math.IsInf(v.val, 1) {
			fail("%s %g must be a non-negative finite duration", v.name, v.val)
		}
	}
	if *straggleFactor != 0 && (math.IsNaN(*straggleFactor) || math.IsInf(*straggleFactor, 0) || *straggleFactor <= 1) {
		fail("-straggle-factor %g must be a finite multiplier > 1", *straggleFactor)
	}
	if *retries < 0 {
		fail("-retries %d must not be negative", *retries)
	}
	crashList, err := parseCrashes(*crashesFlag)
	if err != nil {
		fail("%v", err)
	}
	faultOn := *crashEveryUS > 0 || *straggleEveryUS > 0 || *stallEveryUS > 0 || len(crashList) > 0
	recoveryOn := *retries > 0 || *retryBackoffUS > 0 || *retryBackoffCapUS > 0 ||
		*timeoutUS > 0 || *hedgeUS > 0 || *failover
	if (faultOn || recoveryOn) && len(poolArchs) == 0 {
		fail("fault and recovery flags need -pools (fault injection is a fleet feature)")
	}
	for _, c := range crashList {
		if c.Pool >= len(poolArchs) {
			fail("-crash pool %d outside the %d-pool fleet", c.Pool, len(poolArchs))
		}
	}
	if *crashEveryUS > 0 && !(*crashDownUS > 0) {
		fail("-crash-every-us needs a positive -crash-down-us")
	}
	if *crashEveryUS == 0 && *crashDownUS > 0 {
		fail("-crash-down-us has no effect without -crash-every-us")
	}
	if *straggleEveryUS > 0 && (!(*straggleForUS > 0) || *straggleFactor == 0) {
		fail("-straggle-every-us needs -straggle-for-us and -straggle-factor")
	}
	if *straggleEveryUS == 0 && (*straggleForUS > 0 || *straggleFactor != 0) {
		fail("straggler knobs (-straggle-for-us, -straggle-factor) need -straggle-every-us")
	}
	if *stallEveryUS > 0 && !(*stallForUS > 0) {
		fail("-stall-every-us needs a positive -stall-for-us")
	}
	if *stallEveryUS == 0 && (*stallForUS > 0 || *stallMaxUS > 0) {
		fail("stall knobs (-stall-for-us, -stall-max-us) need -stall-every-us")
	}
	if *stallMaxUS > 0 && *stallMaxUS < *stallForUS {
		fail("-stall-max-us %g below -stall-for-us %g", *stallMaxUS, *stallForUS)
	}
	if (*retryBackoffUS > 0 || *retryBackoffCapUS > 0) && *retries == 0 {
		fail("retry backoff needs a positive -retries budget")
	}
	if *retryBackoffCapUS > 0 && *retryBackoffCapUS < *retryBackoffUS {
		fail("-retry-backoff-cap-us %g below -retry-backoff-us %g", *retryBackoffCapUS, *retryBackoffUS)
	}
	// Adaptive-routing flags. The knob ranges mirror AdaptiveSpec's
	// validation so a bad value dies here with the flag's name.
	if *adaptive && len(poolArchs) == 0 {
		fail("-adaptive needs -pools (feedback-driven routing is a fleet feature)")
	}
	if !*adaptive && (*explorePct != 0 || *obsHalfLife != 0 || *buckets != 0) {
		fail("adaptive knobs (-explore-pct, -obs-halflife, -buckets) need -adaptive")
	}
	if *explorePct < 0 || *explorePct >= 100 || math.IsNaN(*explorePct) {
		fail("-explore-pct %g must be in [0, 100)", *explorePct)
	}
	if !(*obsHalfLife >= 0) || math.IsInf(*obsHalfLife, 1) {
		fail("-obs-halflife %g must be a non-negative finite sample count", *obsHalfLife)
	}
	if *buckets < 0 || *buckets > hipe.MaxAdaptiveBuckets {
		fail("-buckets %d outside 0..%d", *buckets, hipe.MaxAdaptiveBuckets)
	}

	cfg := hipe.Default()
	cfg.Tuples, cfg.Seed = *tuples, *seed
	var tab *hipe.Lineitem
	if *clustered {
		tab = hipe.GenerateClustered(cfg.Tuples, cfg.Seed, int32(*noise))
	} else {
		tab = hipe.Generate(cfg.Tuples, cfg.Seed)
	}
	var cluster *hipe.Cluster
	var fleet *hipe.Fleet
	if len(poolArchs) > 0 {
		fleet, err = hipe.ServeFleet(cfg, tab, *shards, poolArchs)
		if err == nil {
			cluster = fleet.Cluster
		}
	} else {
		cluster, err = hipe.Serve(cfg, tab, *shards)
	}
	if err != nil {
		log.Fatal(err)
	}
	q1 := hipe.Q01{ShipCut: int32(*q1cut)}
	if *q1cut == 0 {
		q1 = hipe.DefaultQ01()
	}
	reqs, err := hipe.StreamSpec{
		N: *requests, Seed: *streamSeed, Archs: mix, Aggregate: *aggregate,
		Q1Every: *q1every, Q1Query: q1, Classes: len(classes),
	}.Requests()
	if err != nil {
		log.Fatal(err)
	}

	var spec hipe.LoadSpec
	if *mode == "open" {
		mean := uint64(hipe.NominalHz / *qps)
		if mean == 0 {
			mean = 1
		}
		duration := uint64(*durationMS / 1e3 * hipe.NominalHz)
		// Decorrelate the arrival process from the request stream: both
		// draw one RNG value per request, so sharing the seed would tie
		// each request's selectivity to its interarrival gap.
		arrivalSeed := *streamSeed ^ 0xA5A5_5A5A_0F0F_F0F0
		if *traceMode {
			spec = hipe.TraceLoop(reqs, hipe.TraceSpec{
				Mean:          mean,
				DiurnalPeriod: usToCycles(*tracePeriodUS),
				DiurnalAmp:    *traceAmp,
				BurstFactor:   *burst,
				BurstOn:       usToCycles(*burstOnUS),
				BurstOff:      usToCycles(*burstOffUS),
			}, duration, arrivalSeed)
		} else {
			spec = hipe.OpenLoop(reqs, mean, duration, arrivalSeed)
		}
	} else {
		spec = hipe.ClosedLoop(reqs, *concurrency)
	}
	spec.Classes = classes
	spec.Shed = *shed
	// Per-class recovery knobs apply uniformly from the CLI; a classless
	// run gets the synthesized default class to hang them on.
	if *timeoutUS > 0 || *hedgeUS > 0 {
		if len(spec.Classes) == 0 {
			spec.Classes = []hipe.ClassSpec{{Name: "default"}}
		}
		for i := range spec.Classes {
			spec.Classes[i].TimeoutCycles = faultCycles(*timeoutUS)
			spec.Classes[i].HedgeCycles = faultCycles(*hedgeUS)
		}
	}
	if faultOn {
		spec.Faults = &hipe.FaultSpec{
			Seed:           *faultSeed,
			CrashEvery:     faultCycles(*crashEveryUS),
			CrashDown:      faultCycles(*crashDownUS),
			StraggleEvery:  faultCycles(*straggleEveryUS),
			StraggleFor:    faultCycles(*straggleForUS),
			StraggleFactor: *straggleFactor,
			StallEvery:     faultCycles(*stallEveryUS),
			StallFor:       faultCycles(*stallForUS),
			StallMax:       faultCycles(*stallMaxUS),
			Crashes:        crashList,
		}
	}
	if *adaptive {
		spec.Adaptive = &hipe.AdaptiveSpec{
			Buckets:    *buckets,
			HalfLife:   *obsHalfLife,
			ExplorePct: *explorePct,
			Seed:       *adaptSeed,
		}
	}
	if recoveryOn {
		spec.Recovery = &hipe.RecoverySpec{
			MaxRetries:       *retries,
			BackoffCycles:    faultCycles(*retryBackoffUS),
			BackoffCapCycles: faultCycles(*retryBackoffCapUS),
			Hedge:            *hedgeUS > 0,
			Failover:         *failover,
		}
	}

	opt := hipe.ServeOptions{
		Workers:  *workers,
		Counters: *counters,
		Exec:     emode,
		// The span exporters are the only consumers of the virtual-time
		// trace, so asking for either turns the tracer on.
		Trace: *traceJSON != "" || *spansCSV != "",
	}
	if !*quiet {
		opt.OnTask = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rhipe-serve: %d/%d shard tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// The profiling hooks cover exactly the load test — setup (table
	// generation, shard build) stays out of the profiles.
	prof := &hipe.Profile{CPUPath: *cpuprofile, MemPath: *memprofile, TracePath: *traceOut}
	if err := prof.Start(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	var report *hipe.LoadReport
	if fleet != nil {
		report, err = fleet.LoadTest(spec, opt)
	} else {
		report, err = hipe.LoadTest(cluster, spec, opt)
	}
	elapsed := time.Since(start)
	if perr := prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		log.Fatal(err)
	}

	// An export aimed at stdout owns it; the summary would corrupt the
	// piped CSV/JSON.
	if stdoutClaims == 0 {
		fmt.Print(report.Summary())
		fmt.Printf("\n%d requests served in %v wall clock (%d workers)\n",
			report.Completed, elapsed.Round(time.Millisecond), opt.EffectiveWorkers())
	}
	if *csvPath != "" {
		writeExport(*csvPath, report.WriteCSV)
	}
	if *jsonPath != "" {
		writeExport(*jsonPath, report.WriteJSON)
	}
	if *traceJSON != "" {
		writeExport(*traceJSON, report.WriteChromeTrace)
	}
	if *spansCSV != "" {
		writeExport(*spansCSV, report.WriteSpanCSV)
	}
}

// usToCycles converts simulated microseconds to cycles at the nominal
// 2 GHz clock.
func usToCycles(us float64) uint64 {
	return uint64(us / 1e6 * hipe.NominalHz)
}

// faultCycles converts a positive fault/recovery duration to cycles,
// never rounding a positive flag down to the disabled zero value.
func faultCycles(us float64) uint64 {
	if us <= 0 {
		return 0
	}
	if c := usToCycles(us); c > 0 {
		return c
	}
	return 1
}

// parseCrashes parses the -crash grammar: comma-separated
// pool:at_µs:down_µs triples, durations at the nominal clock.
func parseCrashes(s string) ([]hipe.FaultCrash, error) {
	var out []hipe.FaultCrash
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("-crash entry %q is not pool:at_µs:down_µs", part)
		}
		pool, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || pool < 0 {
			return nil, fmt.Errorf("-crash entry %q: bad pool %q", part, fields[0])
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil || !(at >= 0) || math.IsInf(at, 1) {
			return nil, fmt.Errorf("-crash entry %q: bad start %q (µs, non-negative)", part, fields[1])
		}
		down, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil || !(down > 0) || math.IsInf(down, 1) {
			return nil, fmt.Errorf("-crash entry %q: bad outage %q (µs, positive)", part, fields[2])
		}
		out = append(out, hipe.FaultCrash{Pool: pool, At: usToCycles(at), Down: faultCycles(down)})
	}
	return out, nil
}

// parseClasses parses the -classes grammar: comma-separated
// name:slo_µs:patience_µs triples, durations at the nominal clock.
func parseClasses(s string) ([]hipe.ClassSpec, error) {
	var out []hipe.ClassSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("-classes entry %q is not name:slo_µs:patience_µs", part)
		}
		name := strings.TrimSpace(fields[0])
		if name == "" {
			return nil, fmt.Errorf("-classes entry %q has no name", part)
		}
		slo, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil || !(slo >= 0) || math.IsInf(slo, 1) {
			return nil, fmt.Errorf("-classes entry %q: bad SLO %q (µs, non-negative)", part, fields[1])
		}
		pat, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if err != nil || !(pat >= 0) || math.IsInf(pat, 1) {
			return nil, fmt.Errorf("-classes entry %q: bad patience %q (µs, non-negative)", part, fields[2])
		}
		out = append(out, hipe.ClassSpec{
			Name: name, SLOCycles: usToCycles(slo), PatienceCycles: usToCycles(pat),
		})
	}
	return out, nil
}

func writeExport(path string, write func(w io.Writer) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	if path != "-" {
		log.Printf("wrote %s", path)
	}
}
