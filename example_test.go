package hipe_test

// Runnable godoc examples for the three public entry points. Each
// prints only facts that hold at any scale, so `go test` executes the
// documented snippets without pinning exact cycle counts.

import (
	"fmt"
	"log"

	hipe "github.com/hipe-sim/hipe"
)

// ExampleRun simulates one plan — the paper's best HIPE configuration —
// and verifies it against the reference evaluator.
func ExampleRun() {
	cfg := hipe.Default()
	cfg.Tuples = 1024 // keep the example fast; the default is 16384
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)

	res, err := hipe.Run(cfg, tab, hipe.Plan{
		Arch:     hipe.HIPE,
		Strategy: hipe.ColumnAtATime,
		OpSize:   256,
		Unroll:   32,
		Q:        hipe.DefaultQ06(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated:", res.Cycles > 0)
	fmt.Println("verified checks:", res.Checked > 0)
	fmt.Println("energy audited:", res.Energy.DRAMPJ() > 0)
	// Output:
	// simulated: true
	// verified checks: true
	// energy audited: true
}

// ExampleFigure regenerates one panel of the paper's Figure 3 as a
// text table.
func ExampleFigure() {
	cfg := hipe.Default()
	cfg.Tuples = 1024

	table, err := hipe.Figure(cfg, "3d")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.Title)
	fmt.Println("rows:", len(table.Rows))
	// The x86 row is the normalisation baseline; every cube
	// architecture beats it at its best configuration.
	hipeRow := table.Rows[len(table.Rows)-1]
	fmt.Println("HIPE faster than x86:", hipeRow.Cycles < table.Baseline)
	// Output:
	// Figure 3d — best case of each architecture
	// rows: 4
	// HIPE faster than x86: true
}

// ExampleServe shards a table across a fleet of simulated machines,
// answers one verified query, and runs a closed-loop load test.
func ExampleServe() {
	cfg := hipe.Default()
	cfg.Tuples = 1024
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)

	cluster, err := hipe.Serve(cfg, tab, 4)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := cluster.Query(hipe.ServeRequest{
		Plan: hipe.ServePlan(hipe.HIPE, hipe.DefaultQ06()),
	}, hipe.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shards:", cluster.Shards())
	// Query already verified the merge against the unsharded reference;
	// the public Selectivity helper confirms it once more.
	sel := hipe.Selectivity(tab, hipe.DefaultQ06())
	fmt.Println("exact matches:", float64(resp.Matches)/float64(tab.N) == sel)

	reqs, err := hipe.StreamSpec{N: 8, Seed: 7}.Requests()
	if err != nil {
		log.Fatal(err)
	}
	report, err := hipe.LoadTest(cluster, hipe.ClosedLoop(reqs, 2), hipe.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("served:", report.Completed)
	fmt.Println("tail above median:", report.LatencyP99 >= report.LatencyP50)
	// Output:
	// shards: 4
	// exact matches: true
	// served: 8
	// tail above median: true
}

// ExampleServe_autoRouting routes a request with hipe.ArchAuto: the
// adaptive planner profiles the predicate's selectivity on the served
// table, estimates every registered backend's cycles with the analytic
// cost model, and executes the predicted-fastest backend — here HIPE,
// whose predication skips whole chunks on the date-clustered layout at
// Query 06's low selectivity.
func ExampleServe_autoRouting() {
	cfg := hipe.Default()
	cfg.Tuples = 4096
	tab := hipe.GenerateClustered(cfg.Tuples, cfg.Seed, 10)

	cluster, err := hipe.Serve(cfg, tab, 4)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := cluster.Query(hipe.ServeRequest{
		Plan: hipe.ServePlan(hipe.ArchAuto, hipe.DefaultQ06()),
	}, hipe.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routed to:", resp.Request.Plan.Arch)
	fmt.Println("candidates considered:", len(resp.Routing.Estimates))
	fmt.Println("answer verified:", resp.Matches == int(float64(tab.N)*hipe.Selectivity(tab, hipe.DefaultQ06())))
	// Output:
	// routed to: hipe
	// candidates considered: 4
	// answer verified: true
}

// ExampleRun_q1Aggregation runs the TPC-H Q01-style grouped aggregation
// on the HIPE predicated engine: the shipdate filter, the (returnflag,
// linestatus) group-by and all four per-group aggregates execute inside
// the memory, and the spilled accumulators are verified against the
// reference evaluator.
func ExampleRun_q1Aggregation() {
	cfg := hipe.Default()
	cfg.Tuples = 1024
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)

	res, err := hipe.Run(cfg, tab, hipe.Plan{
		Arch:     hipe.HIPE,
		Strategy: hipe.ColumnAtATime,
		OpSize:   256,
		Unroll:   32,
		Kind:     hipe.Q1Agg,
		Q1:       hipe.DefaultQ01(),
	})
	if err != nil {
		log.Fatal(err)
	}
	ref := hipe.ReferenceQ1(tab, hipe.DefaultQ01())
	fmt.Println("groups reported:", len(res.Groups))
	fmt.Println("matches reference:", res.Groups[0] == ref.Groups[0])
	var rows int64
	for _, g := range res.Groups {
		rows += g.Count
	}
	fmt.Println("rows aggregated:", rows == int64(ref.Matches))
	// Output:
	// groups reported: 6
	// matches reference: true
	// rows aggregated: true
}

// ExampleSweep fans a declarative grid across all cores and reads the
// aggregated, index-ordered result set.
func ExampleSweep() {
	cfg := hipe.Default()

	rs, err := hipe.Sweep(cfg, hipe.Grid{
		Archs:   []hipe.Arch{hipe.HMC, hipe.HIPE},
		Unrolls: []int{1, 32},
		Tuples:  []int{1024},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cells:", len(rs.Cells))
	for _, best := range rs.Best() {
		fmt.Println("best:", best.Cell.Plan)
	}
	// Output:
	// cells: 4
	// best: hmc/column-at-a-time/256B/1x
	// best: hipe/column-at-a-time/256B/32x
}

// ExampleSweep_estimateMode runs the same auto-routed sweep twice —
// exact machine simulation and the cost-model estimate fast path. The
// fast path prices every cell analytically (orders of magnitude faster,
// bounded cycle error — see docs/PERFORMANCE.md) but routes through the
// identical planner call, so both modes pick the same backend.
func ExampleSweep_estimateMode() {
	cfg := hipe.Default()
	grid := hipe.Grid{
		Archs:   []hipe.Arch{hipe.ArchAuto},
		Unrolls: []int{32},
		Tuples:  []int{1024},
	}

	exact, err := hipe.SweepWith(cfg, grid, hipe.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	est, err := hipe.SweepWith(cfg, grid, hipe.SweepOptions{Exec: hipe.ExecEstimate})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimate marked:", est.Cells[0].Mode == hipe.ExecEstimate)
	fmt.Println("same routing pick:", est.Cells[0].Routing.Chosen == exact.Cells[0].Routing.Chosen)
	fmt.Println("cycles priced:", est.Cells[0].Result.Cycles > 0)
	// Output:
	// estimate marked: true
	// same routing pick: true
	// cycles priced: true
}

// ExampleServe_parallelShards shows the determinism contract behind
// intra-request parallelism: per-shard machine simulations run
// concurrently on the executor pool, partials merge in shard order, and
// the report's cycle figure is the scatter-gather critical path — so
// the answer and the report bytes are identical at any worker count.
func ExampleServe_parallelShards() {
	cfg := hipe.Default()
	cfg.Tuples = 1024
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)

	cluster, err := hipe.Serve(cfg, tab, 4)
	if err != nil {
		log.Fatal(err)
	}
	req := hipe.ServeRequest{Plan: hipe.ServePlan(hipe.HIPE, hipe.DefaultQ06())}
	serial, err := cluster.Query(req, hipe.ServeOptions{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	wide, err := cluster.Query(req, hipe.ServeOptions{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same answer:", wide.Matches == serial.Matches && wide.Revenue == serial.Revenue)
	fmt.Println("same critical path:", wide.Cycles == serial.Cycles)
	// Output:
	// same answer: true
	// same critical path: true
}

// ExampleServe_tracing runs a small load test with the observability
// layer on: the virtual-time tracer records each request's span tree
// (admission, routing, per-shard machine replay, merge) in simulated
// cycles, and every shard simulation's machine counters roll up into
// the report. Both are off by default and cost nothing when off; when
// on, their exports are byte-identical at any worker count.
func ExampleServe_tracing() {
	cfg := hipe.Default()
	cfg.Tuples = 1024
	tab := hipe.GenerateClustered(cfg.Tuples, cfg.Seed, 10)

	cluster, err := hipe.Serve(cfg, tab, 2)
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := hipe.StreamSpec{N: 4, Seed: 7, Archs: []hipe.Arch{hipe.ArchAuto}}.Requests()
	if err != nil {
		log.Fatal(err)
	}
	report, err := hipe.LoadTest(cluster, hipe.ClosedLoop(reqs, 2),
		hipe.ServeOptions{Trace: true, Counters: true})
	if err != nil {
		log.Fatal(err)
	}

	// The first request's span tree, in record order. The async request
	// span (pid 0, the router track) brackets the routing instant, one
	// complete span per shard task (pid 1, tid = shard) and the merge.
	for _, s := range report.Trace.Spans() {
		if s.ID != 0 && s.Phase != hipe.TracePhaseComplete {
			continue
		}
		switch s.Phase {
		case hipe.TracePhaseBegin:
			fmt.Printf("%s\n", s.Name)
		case hipe.TracePhaseComplete:
			if s.Name != "q0 hipe" {
				continue
			}
			fmt.Printf("  shard %d replay\n", s.Tid)
		case hipe.TracePhaseInstant:
			fmt.Printf("  %s\n", s.Name)
		case hipe.TracePhaseEnd:
			fmt.Printf("%s done\n", s.Name)
		}
		if s.Phase == hipe.TracePhaseEnd {
			break
		}
	}

	// The counter snapshot sums every distinct shard simulation once.
	squashed, _ := report.Counters.Get("hipe.squashed")
	scheduled, _ := report.Counters.Get("engine.events_scheduled")
	fmt.Println("predicated ops squashed:", squashed > 0)
	fmt.Println("engine events scheduled:", scheduled > 0)
	// Output:
	// q0 hipe
	//   route
	//   shard 0 replay
	//   shard 1 replay
	//   merge
	// q0 hipe done
	// predicated ops squashed: true
	// engine events scheduled: true
}

// ExampleServeFleet_faults injects a replica outage into a load test
// and lets the recovery policy route around it. Pool 0 is down for the
// whole horizon; with failover on, every request lands on the healthy
// replica and completes exactly. A second run crashes both replicas:
// the retry budget runs out and the fleet returns a gracefully
// degraded answer — explicit zero coverage instead of an answer that
// silently never arrives.
func ExampleServeFleet_faults() {
	cfg := hipe.Default()
	cfg.Tuples = 1024
	tab := hipe.Generate(cfg.Tuples, cfg.Seed)

	fleet, err := hipe.ServeFleet(cfg, tab, 2, []hipe.Arch{hipe.HIPE, hipe.HIPE})
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := hipe.StreamSpec{N: 4, Seed: 7, Archs: []hipe.Arch{hipe.ArchAuto}}.Requests()
	if err != nil {
		log.Fatal(err)
	}

	spec := hipe.ClosedLoop(reqs, 1)
	spec.Classes = []hipe.ClassSpec{{Name: "rt", SLOCycles: 1_000_000, TimeoutCycles: 500_000}}
	spec.Faults = &hipe.FaultSpec{Crashes: []hipe.FaultCrash{
		{Pool: 0, At: 0, Down: 50_000_000},
	}}
	spec.Recovery = &hipe.RecoverySpec{MaxRetries: 2, BackoffCycles: 1_000, Failover: true}
	report, err := fleet.LoadTest(spec, hipe.ServeOptions{Counters: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed:", report.Completed)
	fmt.Println("failovers:", report.Faults.Failovers)
	fmt.Println("degraded:", report.Degraded)
	failovers, _ := report.Counters.Get("serve.failovers")
	fmt.Println("counter agrees:", int(failovers) == report.Faults.Failovers)

	// Both replicas down: the request can neither run nor fail over, so
	// when the attempt budget is spent it degrades with exact coverage
	// accounting rather than waiting out the outage.
	spec.Faults = &hipe.FaultSpec{Crashes: []hipe.FaultCrash{
		{Pool: 0, At: 0, Down: 50_000_000},
		{Pool: 1, At: 0, Down: 50_000_000},
	}}
	report, err = fleet.LoadTest(spec, hipe.ServeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tr := report.Requests[0]
	fmt.Println("degraded:", tr.Degraded, "with coverage:", tr.Coverage)
	// Output:
	// completed: 4
	// failovers: 4
	// degraded: 0
	// counter agrees: true
	// degraded: true with coverage: 0
}
