#!/usr/bin/env bash
# Planner gate: adaptive (-archs auto) routing must be deterministic —
# the same backend picks, the same estimates, byte for byte — at any
# worker count. This renders an auto-routed serve report and an
# auto-axis sweep at 1 worker and at all cores, compares the full
# exports, and then diffs the routing-decision columns in isolation so
# a routing nondeterminism cannot hide behind an unrelated export
# difference.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
many=$(nproc)
if [ "$many" -lt 4 ]; then
  many=4
fi

echo "== auto-routed serve report: -workers 1 vs -workers $many =="
serve() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -archs auto -clustered \
    -q1-every 3 -quiet \
    -csv "$out/serve.$1.csv" -json "$out/serve.$1.json" >/dev/null
}
serve 1
serve "$many"
cmp "$out/serve.1.csv" "$out/serve.$many.csv"
cmp "$out/serve.1.json" "$out/serve.$many.json"

# The routing-decision columns in isolation: arch (the pick) plus the
# trailing routed/est_selectivity/est_* audit columns.
routing_cols() {
  awk -F, 'NR==1{for(i=1;i<=NF;i++) if($i=="arch"||$i=="routed"||index($i,"est_")==1) keep[i]=1}
           {line=""; for(i=1;i<=NF;i++) if(keep[i]) line=line $i ","; print line}' "$1"
}
routing_cols "$out/serve.1.csv" >"$out/route.1"
routing_cols "$out/serve.$many.csv" >"$out/route.N"
cmp "$out/route.1" "$out/route.N"
grep -q "true" "$out/route.1" || { echo "no routed request in the auto report"; exit 1; }

echo "== auto-axis sweep: -workers 1 vs -workers $many =="
sweep() {
  go run ./cmd/hipe-sweep -workers "$1" \
    -archs auto,x86,hmc,hive,hipe -opsizes 64,256 -unrolls 8 \
    -tuples 4096 -q1cuts 800 -quiet \
    -csv "$out/sweep.$1.csv" -json "$out/sweep.$1.json" >/dev/null
}
sweep 1
sweep "$many"
cmp "$out/sweep.1.csv" "$out/sweep.$many.csv"
cmp "$out/sweep.1.json" "$out/sweep.$many.json"
grep -q "^.*,auto," "$out/sweep.1.csv" || { echo "no auto cell in the sweep export"; exit 1; }

echo "planner gate passed: routing decisions byte-identical at 1 and $many workers"
