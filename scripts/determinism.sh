#!/usr/bin/env bash
# Byte-determinism gate: the repository's documented invariant is that
# every result artifact — figure tables, sweep CSV/JSON exports, serve
# reports — is byte-identical at any worker count. This script makes the
# claim an explicit pipeline gate: it renders each artifact at 1 worker
# and at all cores, and fails on the first byte of difference. The sweep
# and serve runs include Q01 aggregation cells/requests so the grouped
# workload family is gated alongside the Q06 selection scan.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
many=$(nproc)
if [ "$many" -lt 4 ]; then
  # Even on small machines, compare against a genuinely concurrent pool:
  # extra workers beyond the core count still interleave goroutines.
  many=4
fi

echo "== figure tables: GOMAXPROCS=1 vs GOMAXPROCS=$many =="
GOMAXPROCS=1 go run ./cmd/hipe-bench -timing=false -tuples 4096 >"$out/figs.1"
GOMAXPROCS="$many" go run ./cmd/hipe-bench -timing=false -tuples 4096 >"$out/figs.N"
cmp "$out/figs.1" "$out/figs.N"

echo "== sweep CSV/JSON: -workers 1 vs -workers $many =="
sweep() {
  go run ./cmd/hipe-sweep -workers "$1" \
    -archs x86,hmc,hive,hipe -opsizes 64,256 -unrolls 1,8 \
    -tuples 4096 -q1cuts 2436 -quiet \
    -csv "$out/sweep.$1.csv" -json "$out/sweep.$1.json" >/dev/null
}
sweep 1
sweep "$many"
cmp "$out/sweep.1.csv" "$out/sweep.$many.csv"
cmp "$out/sweep.1.json" "$out/sweep.$many.json"

echo "== serve report: -workers 1 vs -workers $many =="
serve() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -q1-every 3 -quiet \
    -csv "$out/serve.$1.csv" -json "$out/serve.$1.json" >/dev/null
}
serve 1
serve "$many"
cmp "$out/serve.1.csv" "$out/serve.$many.csv"
cmp "$out/serve.1.json" "$out/serve.$many.json"

echo "== fleet report (replicas + classes + shed): -workers 1 vs -workers $many =="
fleet() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -mode open -qps 250000 \
    -pools hipe,hipe,x86,hmc -archs auto -q1-every 3 \
    -classes "batch:400:100,rt:200:0" -shed -quiet \
    -csv "$out/fleet.$1.csv" -json "$out/fleet.$1.json" >/dev/null
}
fleet 1
fleet "$many"
cmp "$out/fleet.1.csv" "$out/fleet.$many.csv"
cmp "$out/fleet.1.json" "$out/fleet.$many.json"

echo "== fleet report (trace-driven arrivals): -workers 1 vs -workers $many =="
trace() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -mode open -qps 250000 \
    -pools hipe,x86 -archs auto \
    -trace -trace-period-us 40 -trace-amp 0.6 \
    -burst 4 -burst-on-us 5 -burst-off-us 15 \
    -classes "batch:300:60,rt:150:0" -shed -quiet \
    -csv "$out/trace.$1.csv" -json "$out/trace.$1.json" >/dev/null
}
trace 1
trace "$many"
cmp "$out/trace.1.csv" "$out/trace.$many.csv"
cmp "$out/trace.1.json" "$out/trace.$many.json"

echo "== observability exports (counters + virtual-time trace): -workers 1 vs -workers $many =="
obs() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -mode open -qps 250000 \
    -pools hipe,x86 -archs auto -counters \
    -trace-json "$out/obs.$1.trace.json" -spans-csv "$out/obs.$1.spans.csv" \
    -json "$out/obs.$1.json" -quiet >/dev/null
}
obs 1
obs "$many"
cmp "$out/obs.1.trace.json" "$out/obs.$many.trace.json"
cmp "$out/obs.1.spans.csv" "$out/obs.$many.spans.csv"
cmp "$out/obs.1.json" "$out/obs.$many.json"

echo "== faulted fleet (crashes + stragglers + stalls + recovery): -workers 1 vs -workers $many =="
faulted() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -mode open -qps 250000 \
    -pools hipe,hipe,x86 -archs auto -q1-every 3 \
    -classes "batch:400:100,rt:200:0" -shed \
    -crash 1:40:120 -crash-every-us 500 -crash-down-us 150 \
    -straggle-every-us 300 -straggle-for-us 100 -straggle-factor 3 \
    -stall-every-us 400 -stall-for-us 20 -stall-max-us 60 \
    -retries 2 -retry-backoff-us 5 -retry-backoff-cap-us 40 \
    -timeout-us 400 -hedge-us 150 -failover -fault-seed 7 \
    -counters -quiet \
    -trace-json "$out/faulted.$1.trace.json" -spans-csv "$out/faulted.$1.spans.csv" \
    -csv "$out/faulted.$1.csv" -json "$out/faulted.$1.json" >/dev/null
}
faulted 1
faulted "$many"
cmp "$out/faulted.1.csv" "$out/faulted.$many.csv"
cmp "$out/faulted.1.json" "$out/faulted.$many.json"
cmp "$out/faulted.1.trace.json" "$out/faulted.$many.trace.json"
cmp "$out/faulted.1.spans.csv" "$out/faulted.$many.spans.csv"

echo "== sweep counter columns: -workers 1 vs -workers $many =="
ctrsweep() {
  go run ./cmd/hipe-sweep -workers "$1" \
    -archs x86,hmc,hive,hipe -opsizes 64,256 -unrolls 8 \
    -tuples 4096 -q1cuts 2436 -counters -quiet \
    -csv "$out/ctr.$1.csv" >/dev/null
}
ctrsweep 1
ctrsweep "$many"
cmp "$out/ctr.1.csv" "$out/ctr.$many.csv"

echo "== estimate-mode sweep (cost-model fast path, auto axis): -workers 1 vs -workers $many =="
estsweep() {
  go run ./cmd/hipe-sweep -workers "$1" -exec estimate \
    -archs x86,hmc,hive,hipe,auto -opsizes 64,256 -unrolls 1,8 \
    -tuples 4096 -q1cuts 2436 -quiet \
    -csv "$out/est.$1.csv" -json "$out/est.$1.json" >/dev/null
}
estsweep 1
estsweep "$many"
cmp "$out/est.1.csv" "$out/est.$many.csv"
cmp "$out/est.1.json" "$out/est.$many.json"

echo "== parallel shard simulation (-cell-shards 4): -workers 1 vs -workers $many =="
shardsweep() {
  go run ./cmd/hipe-sweep -workers "$1" -cell-shards 4 \
    -archs x86,hipe,auto -opsizes 256 -unrolls 8,32 \
    -tuples 4096 -q1cuts 2436 -counters -quiet \
    -csv "$out/shard.$1.csv" -json "$out/shard.$1.json" >/dev/null
}
shardsweep 1
shardsweep "$many"
cmp "$out/shard.1.csv" "$out/shard.$many.csv"
cmp "$out/shard.1.json" "$out/shard.$many.json"

echo "== adaptive fleet (feedback-driven routing): -workers 1 vs -workers $many =="
adaptive() {
  go run ./cmd/hipe-serve -workers "$1" \
    -shards 4 -requests 24 -tuples 4096 -mode open -qps 250000 \
    -pools hipe,x86 -archs auto -q1-every 3 \
    -adaptive -explore-pct 10 -obs-halflife 4 -adapt-seed 11 -quiet \
    -csv "$out/adaptive.$1.csv" -json "$out/adaptive.$1.json" >/dev/null
}
adaptive 1
adaptive "$many"
# The exploration draws and observation folds must replay identically at
# any worker count: the epsilon stream is keyed on (seed, request index)
# and observations fold in during the single-threaded replay.
cmp "$out/adaptive.1.csv" "$out/adaptive.$many.csv"
cmp "$out/adaptive.1.json" "$out/adaptive.$many.json"
grep -q 'route_mode' "$out/adaptive.1.csv" || {
  echo "adaptive CSV lacks the routing provenance columns" >&2; exit 1
}
grep -q ',adaptive,' "$out/adaptive.1.csv" || {
  echo "adaptive CSV never routed a request adaptively" >&2; exit 1
}

echo "== estimate-mode serve report: -workers 1 vs -workers $many =="
estserve() {
  go run ./cmd/hipe-serve -workers "$1" -exec estimate \
    -shards 4 -requests 24 -tuples 4096 -archs auto -q1-every 3 -quiet \
    -csv "$out/estserve.$1.csv" -json "$out/estserve.$1.json" >/dev/null
}
estserve 1
estserve "$many"
cmp "$out/estserve.1.csv" "$out/estserve.$many.csv"
cmp "$out/estserve.1.json" "$out/estserve.$many.json"

echo "determinism gate passed: all artifacts byte-identical at 1 and $many workers"
