// Package hipe is the public API of the HIPE reproduction: a simulator
// for HMC Instruction Predication Extension (Tomé et al., DATE 2018) and
// every substrate its evaluation rests on — the out-of-order x86
// baseline with its cache hierarchy, the Hybrid Memory Cube DRAM and
// SerDes links, the extended HMC 2.1 instruction baseline, the HIVE
// vector engine, and the HIPE predicated engine itself, exercised by a
// TPC-H Query 06 selection-scan workload over row-store and column-store
// layouts.
//
// Quick start:
//
//	tab := hipe.Generate(16384, 42)
//	res, err := hipe.Run(hipe.Default(), tab, hipe.Plan{
//		Arch:     hipe.HIPE,
//		Strategy: hipe.ColumnAtATime,
//		OpSize:   256,
//		Unroll:   32,
//		Q:        hipe.DefaultQ06(),
//	})
//
// Every figure of the paper regenerates through Figure:
//
//	table, err := hipe.Figure(hipe.Default(), "3d")
//	fmt.Print(table)
package hipe

import (
	"github.com/hipe-sim/hipe/internal/cost"
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/fault"
	"github.com/hipe-sim/hipe/internal/harness"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/obs"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/serve"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// Core workload and experiment types (aliases into the implementation
// packages so external users need only this package).
type (
	// Plan selects architecture, scan strategy, operation size and
	// unroll depth for one experiment.
	Plan = query.Plan
	// Arch is one of the four evaluated architectures.
	Arch = query.Arch
	// Strategy is the scan strategy / storage layout pair.
	Strategy = query.Strategy
	// Lineitem is the generated TPC-H lineitem subset.
	Lineitem = db.Table
	// Q06 is the TPC-H Query 06 predicate.
	Q06 = db.Q06
	// Q01 is the TPC-H Query 01-style aggregation predicate: a shipdate
	// filter whose query groups by (returnflag, linestatus) and
	// accumulates per-group COUNT/SUM aggregates.
	Q01 = db.Q01
	// GroupAgg is one (returnflag, linestatus) group's aggregates.
	GroupAgg = db.GroupAgg
	// Q1Result is the reference outcome of the Q01 aggregation.
	Q1Result = db.Q1Result
	// QueryKind selects a plan's workload family (Q6Select or Q1Agg).
	QueryKind = query.QueryKind
	// Config parameterises experiment runs (tuples, seed, machine).
	Config = harness.Config
	// Result is the outcome of one simulated plan.
	Result = harness.Result
	// FigureTable is a rendered experiment series.
	FigureTable = harness.Table
	// MachineConfig exposes every Table I parameter for customisation.
	MachineConfig = machine.Config
	// EnergyModel holds the energy constants.
	EnergyModel = energy.Model
	// EnergyBreakdown is a per-component energy audit.
	EnergyBreakdown = energy.Breakdown
	// Grid declares a parameter sweep as a cross-product of axes.
	Grid = sweep.Grid
	// Cell is one fully-instantiated sweep experiment.
	Cell = sweep.Cell
	// CellResult is one aggregated sweep outcome (result, selectivity,
	// speedup against the workload group's x86 baseline).
	CellResult = sweep.CellResult
	// ResultSet aggregates a sweep, ordered by cell index, with CSV and
	// JSON exporters.
	ResultSet = sweep.ResultSet
	// SweepOptions tune a sweep run (worker count, progress callback,
	// counter capture, execution mode, intra-cell shard parallelism).
	SweepOptions = sweep.Options
	// ExecMode selects exact machine simulation (ExecExact, the default)
	// or the analytic cost model's calibrated fast path (ExecEstimate)
	// for sweeps and serving replays. Estimate mode keeps answers exact,
	// bounds cycle error (pinned by test; see docs/PERFORMANCE.md), and
	// refuses outputs only real simulation can produce (machine
	// counters, traces).
	ExecMode = sweep.ExecMode
	// Cluster is a sharded serving fleet: one table partitioned across
	// simulated machines, answering concurrent Q06-family requests.
	Cluster = serve.Cluster
	// ServeRequest is one admitted query (a full plan over the fleet).
	ServeRequest = serve.Request
	// ServeResponse is a merged, verified whole-table answer.
	ServeResponse = serve.Response
	// ServeOptions tune cluster execution: the executor pool running
	// shard simulations, counter capture, virtual-time tracing, and the
	// execution mode (exact simulation or the estimate fast path).
	ServeOptions = serve.Options
	// StreamSpec declares a seeded mixed-selectivity request stream.
	StreamSpec = serve.StreamSpec
	// LoadSpec declares an open- or closed-loop load test.
	LoadSpec = serve.LoadSpec
	// LoadReport is a load test's outcome: throughput, latency
	// quantiles, per-shard utilisation and per-request traces, with
	// CSV/JSON exporters that are byte-identical at any worker count.
	LoadReport = serve.Report
	// Fleet is a replicated serving fleet: R replica pools over one
	// sharded table, each pool pinned to a backend family, routed
	// jointly by predicted critical path and queue depth.
	Fleet = serve.Fleet
	// TraceSpec declares a trace-driven, non-homogeneous open-loop
	// arrival process (diurnal modulation plus bursts), seeded and
	// exactly replayable.
	TraceSpec = serve.TraceSpec
	// ClassSpec declares one admission class: its latency SLO and the
	// queueing patience admission control sheds it past.
	ClassSpec = serve.ClassSpec
	// ClassStats is one class's report row: counts, latency quantiles
	// and exact SLO attainment.
	ClassStats = serve.ClassStats
	// PoolStats is one replica pool's report row.
	PoolStats = serve.PoolStats
	// PoolPick records the fleet router's (replica, backend) choice for
	// one request.
	PoolPick = serve.PoolPick
	// ShedTrace records one request admission control refused.
	ShedTrace = serve.ShedTrace
	// FaultSpec declares a seeded deterministic fault schedule for a
	// fleet load test: stochastic replica crashes with later recovery,
	// per-shard straggler slowdowns, bounded transient stalls, and
	// scheduled (pinned) outages. The zero value injects nothing, and
	// the fault streams are decorrelated from every other seeded draw,
	// so enabling faults never changes which requests or arrival times
	// a test contains.
	FaultSpec = fault.Spec
	// FaultCrash is one scheduled replica-pool outage of a FaultSpec.
	FaultCrash = fault.Crash
	// RecoverySpec declares the fleet's request-level recovery policy:
	// capped exponential-backoff retries, hedged second attempts, and
	// health-aware failover routing. Per-class attempt timeouts and
	// hedge delays live on ClassSpec.
	RecoverySpec = serve.RecoverySpec
	// FaultStats totals a faulted/recovering load test's fault events
	// and recovery actions (LoadReport.Faults).
	FaultStats = serve.FaultStats
	// Counters is a deterministic machine-counter snapshot: sorted
	// "scope.counter" keys captured from a run's registry (cache hits,
	// DRAM traffic, predication squashes, scheduler lane accounting).
	// Captured only when ServeOptions/SweepOptions set Counters — off
	// by default and free when off.
	Counters = obs.Counters
	// CounterEntry is one key/value pair of a Counters snapshot.
	CounterEntry = obs.Entry
	// Trace is the virtual-time request tracer: per-request span trees
	// in simulated cycles, recorded during a load test's
	// single-threaded replay when ServeOptions.Trace is set, exported
	// as Chrome trace_event JSON (Perfetto-loadable) or flat CSV.
	Trace = obs.Trace
	// TraceSpan is one recorded span of a Trace: name, category,
	// process/thread track, phase and virtual-cycle timestamps.
	TraceSpan = obs.Span
	// TraceArg is one key/value annotation attached to a TraceSpan.
	TraceArg = obs.Arg
	// TracePhase is a TraceSpan's event kind (complete, begin, end,
	// instant — see the TracePhase* constants).
	TracePhase = obs.Phase
	// Profile bundles the CLI profiling hooks (-cpuprofile,
	// -memprofile, -trace-out): Go pprof CPU/heap profiles and the
	// runtime execution trace of the simulator process itself.
	Profile = obs.Profile
)

// Architectures. ArchAuto is the adaptive planner's sentinel: a plan
// (or serving request, or sweep cell) carrying it is routed to the
// predicted-fastest registered backend by the analytic cost model
// before it compiles.
const (
	X86      = query.X86
	HMC      = query.HMC
	HIVE     = query.HIVE
	HIPE     = query.HIPE
	ArchAuto = query.ArchAuto
)

// Trace span phases (see TraceSpan).
const (
	TracePhaseComplete = obs.PhaseComplete
	TracePhaseBegin    = obs.PhaseBegin
	TracePhaseEnd      = obs.PhaseEnd
	TracePhaseInstant  = obs.PhaseInstant
)

// Execution modes (see ExecMode).
const (
	// ExecExact runs full machine simulations — the default, and the
	// only mode that produces machine counters and traces.
	ExecExact = sweep.ExecExact
	// ExecEstimate prices cells and shard replays with the analytic
	// cost model instead of simulating — orders of magnitude faster,
	// exact answers, bounded cycle error.
	ExecEstimate = sweep.ExecEstimate
)

// ParseExecMode resolves an -exec flag spelling ("exact", "estimate")
// to its mode.
func ParseExecMode(s string) (ExecMode, bool) { return sweep.ParseExecMode(s) }

// ExecModeChoices renders the valid -exec spellings for usage errors.
func ExecModeChoices() string { return sweep.ExecModeChoices() }

// Backend registry and cost-model types (aliases into the
// implementation packages).
type (
	// Backend is one registered execution architecture: a µop-stream
	// compiler plus its static capability report.
	Backend = query.Backend
	// BackendCaps is a backend's capability/constraint envelope.
	BackendCaps = query.Caps
	// CostParams are the analytic cost model's per-operation costs,
	// derived from the simulated machine's latency constants.
	CostParams = cost.Params
	// CostEstimate is the model's cycle/energy prediction for one plan.
	CostEstimate = cost.Estimate
	// RoutingDecision is one routing outcome: profiled selectivity,
	// every candidate's estimate, and the chosen plan — plus, for
	// feedback-driven picks, the blended observed cycles, bucket sample
	// counts, route mode and exploration provenance.
	RoutingDecision = cost.Decision
	// AdaptiveSpec declares feedback-driven routing: observed replay
	// cycles are folded into a per-(kind, backend, selectivity-bucket)
	// EWMA and blended with the analytic prior — prior-weighted while a
	// bucket is cold, observation-dominated once it has samples — with
	// a deterministic exploration floor drawn from a decorrelated seeded
	// stream. Set LoadSpec.Adaptive for a fleet load test (replayed
	// single-threaded, so exports stay byte-identical at any worker
	// count) or pass it to Cluster.EnableAdaptive for the online Query
	// path. The zero value of each knob selects its documented default.
	AdaptiveSpec = cost.AdaptiveConfig
	// WorkloadProfile is the selectivity profile the model consumes.
	WorkloadProfile = cost.Profile
)

// MaxAdaptiveBuckets bounds AdaptiveSpec.Buckets. The selectivity
// buckets are halving intervals, so 64 already reaches sel = 2^-63 —
// far below anything a generated table can produce.
const MaxAdaptiveBuckets = cost.MaxAdaptiveBuckets

// Backends returns the registered execution backends in architecture
// order.
func Backends() []Backend { return query.Backends() }

// ArchNames returns the registered backend names — what CLIs validate
// -arch flags against instead of a hard-coded list.
func ArchNames() []string { return query.BackendNames() }

// ArchChoices renders the valid -arch spellings for usage errors: the
// registered backend names plus "auto".
func ArchChoices() string { return query.ArchChoices() }

// ParseArch resolves a backend name (or "auto") to its architecture.
func ParseArch(name string) (Arch, bool) { return query.ParseArch(name) }

// DefaultCostParams derives the adaptive planner's cost model from the
// paper's Table I machine and default energy constants.
func DefaultCostParams() CostParams { return cost.DefaultParams() }

// ProfileWorkload computes the exact selectivity profile of plan p's
// predicate over tab at p's chunk granularity — the model's input.
func ProfileWorkload(tab *Lineitem, p Plan) WorkloadProfile { return cost.ProfileFor(tab, p) }

// EstimateCost predicts the simulated cycles and energy of one concrete
// plan over tab without running the simulator.
func EstimateCost(pr CostParams, tab *Lineitem, p Plan) (CostEstimate, error) {
	return cost.EstimatePlan(pr, p, cost.ProfileFor(tab, p))
}

// PickPlan ranks candidate plans by estimated cycles over tab and
// returns the routing decision for the predicted-fastest.
func PickPlan(pr CostParams, tab *Lineitem, candidates []Plan) (*RoutingDecision, error) {
	return cost.Pick(pr, tab, candidates)
}

// Scan strategies.
const (
	TupleAtATime  = query.TupleAtATime
	ColumnAtATime = query.ColumnAtATime
)

// Workload families. A zero Plan runs Q6Select; set Plan.Kind = Q1Agg
// (and Plan.Q1) for the grouped aggregation.
const (
	Q6Select = query.Q6Select
	Q1Agg    = query.Q1Agg
)

// Workload-family constants re-exported for callers that validate
// query parameters (CLIs, config loaders).
const (
	// ShipDateDays is the span of generated l_shipdate values.
	ShipDateDays = db.ShipDateDays
	// NumGroups is the (returnflag × linestatus) group cardinality of
	// the Q01 aggregation.
	NumGroups = db.NumGroups
)

// NominalHz is the Table I core clock (2 GHz): the one conversion
// factor between simulated cycles and wall-clock-style figures (QPS,
// microseconds) in serving flags and reports. Simulated results stay
// in cycles; this is presentation only.
const NominalHz = serve.NominalHz

// Default returns the standard experiment configuration (Table I machine,
// 16384 tuples, seed 42).
func Default() Config { return harness.Default() }

// DefaultMachine returns the paper's Table I machine configuration.
func DefaultMachine() MachineConfig { return machine.Default() }

// DefaultEnergy returns the default energy constants.
func DefaultEnergy() EnergyModel { return energy.Default() }

// DefaultQ06 returns the TPC-H Query 06 predicate parameters.
func DefaultQ06() Q06 { return db.DefaultQ06() }

// DefaultQ01 returns the TPC-H Query 01 predicate parameters (the
// 90-day delta shipdate cutoff).
func DefaultQ01() Q01 { return db.DefaultQ01() }

// ReferenceQ1 evaluates the Q01 grouped aggregation in plain Go — the
// oracle every simulated aggregation plan is verified against.
func ReferenceQ1(t *Lineitem, q Q01) *db.Q1Result { return db.ReferenceQ1(t, q) }

// SelectivityQ1 reports the fraction of t passing the Q01 filter.
func SelectivityQ1(t *Lineitem, q Q01) float64 { return db.SelectivityQ1(t, q) }

// Generate builds a lineitem table with dbgen-like distributions,
// deterministically from seed. n must be a multiple of 64.
func Generate(n int, seed uint64) *Lineitem { return db.Generate(n, seed) }

// GenerateClustered builds a lineitem table whose shipdates follow the
// physical row order (an append-ordered fact table). Clustering is what
// lets HIPE's predication skip whole chunks of the later columns; see the
// ablation benches.
func GenerateClustered(n int, seed uint64, noiseDays int32) *Lineitem {
	return db.GenerateClustered(n, seed, noiseDays)
}

// Selectivity reports the fraction of t matching q.
func Selectivity(t *Lineitem, q Q06) float64 { return db.Selectivity(t, q) }

// Run executes one plan on a fresh machine, verifies the computed
// bitmask against the reference evaluator, and audits energy.
func Run(cfg Config, tab *Lineitem, p Plan) (Result, error) { return cfg.Run(tab, p) }

// Figure regenerates one panel of the paper's Figure 3 ("3a".."3d").
func Figure(cfg Config, name string) (*FigureTable, error) { return harness.Figure(cfg, name) }

// FigureCells expands one Figure 3 panel's cell set without running it
// — the exact workload Figure(name) simulates, for driving through
// SweepCells with explicit options (e.g. Counters for the
// observability-overhead benches).
func FigureCells(cfg Config, name string) ([]Cell, error) { return harness.FigureCells(cfg, name) }

// Sweep expands grid and executes every cell through the worker-pool
// engine on GOMAXPROCS workers. Grid axes left empty take defaults,
// with Tuples and Seeds inherited from cfg. Results are aggregated by
// cell index, so the outcome — including CSV/JSON exports — is
// byte-identical at any worker count.
func Sweep(cfg Config, grid Grid) (*ResultSet, error) {
	return sweep.Run(cfg, grid, sweep.Options{})
}

// SweepWith is Sweep with explicit options: worker count, per-cell
// progress callback, counter capture, the execution mode (ExecEstimate
// prices cells with the cost model instead of simulating), and
// intra-cell shard parallelism (CellShards > 1 cuts each cell's table
// into shards simulated concurrently and merged deterministically).
func SweepWith(cfg Config, grid Grid, opt SweepOptions) (*ResultSet, error) {
	return sweep.Run(cfg, grid, opt)
}

// SweepCells executes an explicit cell list (e.g. from Grid.Expand or
// hand-built plans) through the worker pool.
func SweepCells(cfg Config, cells []Cell, opt SweepOptions) (*ResultSet, error) {
	return sweep.RunCells(cfg, cells, opt)
}

// Serve partitions tab across nShards simulated machines and returns
// the serving cluster. Every Query scatters over the shards, and the
// merged match count and revenue are verified against the unsharded
// reference evaluator. The cluster is safe for concurrent Query calls.
func Serve(cfg Config, tab *Lineitem, nShards int) (*Cluster, error) {
	return serve.New(cfg, tab, nShards)
}

// ServePlan returns the per-architecture best plan shape (the Figure 3d
// configurations) over predicate q — the natural serving request.
func ServePlan(arch Arch, q Q06) Plan { return serve.DefaultPlan(arch, q) }

// ServeQ1Plan returns the per-architecture best plan shape for the Q01
// grouped aggregation over predicate q.
func ServeQ1Plan(arch Arch, q Q01) Plan { return serve.DefaultQ1Plan(arch, q) }

// OpenLoop declares an open-loop load test: reqs arrive on a seeded
// Poisson process with the given mean interarrival gap in simulated
// cycles; duration (0 = unlimited) truncates the admitted stream.
func OpenLoop(reqs []ServeRequest, meanInterarrival, duration uint64, seed uint64) LoadSpec {
	return serve.OpenLoop(reqs, meanInterarrival, duration, seed)
}

// ClosedLoop declares a closed-loop load test: concurrency clients
// drain reqs, each keeping one request outstanding with zero think
// time.
func ClosedLoop(reqs []ServeRequest, concurrency int) LoadSpec {
	return serve.ClosedLoop(reqs, concurrency)
}

// TraceLoop declares a trace-driven open-loop load test: reqs arrive
// on the seeded non-homogeneous process trace describes; duration
// (0 = unlimited) truncates the admitted stream.
func TraceLoop(reqs []ServeRequest, trace TraceSpec, duration uint64, seed uint64) LoadSpec {
	return serve.TraceLoop(reqs, trace, duration, seed)
}

// ServeFleet builds a replicated fleet over tab cut into nShards
// shards, one complete replica per entry of pools, each pinned to that
// backend family. Fleet.LoadTest honours admission classes and
// shedding; its reports carry per-pool and per-class (SLO-attainment)
// accounting and stay byte-identical at any worker count.
func ServeFleet(cfg Config, tab *Lineitem, nShards int, pools []Arch) (*Fleet, error) {
	return serve.NewFleet(cfg, tab, nShards, pools)
}

// LoadTest runs spec against the cluster and returns the report:
// per-request latencies on the virtual serving timeline, P50/P95/P99
// quantiles, throughput and per-shard utilisation. Deterministic —
// byte-identical exports — at any executor worker count.
func LoadTest(c *Cluster, spec LoadSpec, opt ServeOptions) (*LoadReport, error) {
	return c.LoadTest(spec, opt)
}

// Figures lists the reproducible panels.
func Figures() []string { return harness.Figures() }

// BestPlans returns the per-architecture best configurations compared in
// Figure 3d.
func BestPlans(q Q06) map[Arch]Plan { return harness.BestPlans(q) }
