// Package hipe is the public API of the HIPE reproduction: a simulator
// for HMC Instruction Predication Extension (Tomé et al., DATE 2018) and
// every substrate its evaluation rests on — the out-of-order x86
// baseline with its cache hierarchy, the Hybrid Memory Cube DRAM and
// SerDes links, the extended HMC 2.1 instruction baseline, the HIVE
// vector engine, and the HIPE predicated engine itself, exercised by a
// TPC-H Query 06 selection-scan workload over row-store and column-store
// layouts.
//
// Quick start:
//
//	tab := hipe.Generate(16384, 42)
//	res, err := hipe.Run(hipe.Default(), tab, hipe.Plan{
//		Arch:     hipe.HIPE,
//		Strategy: hipe.ColumnAtATime,
//		OpSize:   256,
//		Unroll:   32,
//		Q:        hipe.DefaultQ06(),
//	})
//
// Every figure of the paper regenerates through Figure:
//
//	table, err := hipe.Figure(hipe.Default(), "3d")
//	fmt.Print(table)
package hipe

import (
	"github.com/hipe-sim/hipe/internal/db"
	"github.com/hipe-sim/hipe/internal/energy"
	"github.com/hipe-sim/hipe/internal/harness"
	"github.com/hipe-sim/hipe/internal/machine"
	"github.com/hipe-sim/hipe/internal/query"
	"github.com/hipe-sim/hipe/internal/sweep"
)

// Core workload and experiment types (aliases into the implementation
// packages so external users need only this package).
type (
	// Plan selects architecture, scan strategy, operation size and
	// unroll depth for one experiment.
	Plan = query.Plan
	// Arch is one of the four evaluated architectures.
	Arch = query.Arch
	// Strategy is the scan strategy / storage layout pair.
	Strategy = query.Strategy
	// Lineitem is the generated TPC-H lineitem subset.
	Lineitem = db.Table
	// Q06 is the TPC-H Query 06 predicate.
	Q06 = db.Q06
	// Config parameterises experiment runs (tuples, seed, machine).
	Config = harness.Config
	// Result is the outcome of one simulated plan.
	Result = harness.Result
	// FigureTable is a rendered experiment series.
	FigureTable = harness.Table
	// MachineConfig exposes every Table I parameter for customisation.
	MachineConfig = machine.Config
	// EnergyModel holds the energy constants.
	EnergyModel = energy.Model
	// EnergyBreakdown is a per-component energy audit.
	EnergyBreakdown = energy.Breakdown
	// Grid declares a parameter sweep as a cross-product of axes.
	Grid = sweep.Grid
	// Cell is one fully-instantiated sweep experiment.
	Cell = sweep.Cell
	// CellResult is one aggregated sweep outcome (result, selectivity,
	// speedup against the workload group's x86 baseline).
	CellResult = sweep.CellResult
	// ResultSet aggregates a sweep, ordered by cell index, with CSV and
	// JSON exporters.
	ResultSet = sweep.ResultSet
	// SweepOptions tune a sweep run (worker count, progress callback).
	SweepOptions = sweep.Options
)

// Architectures.
const (
	X86  = query.X86
	HMC  = query.HMC
	HIVE = query.HIVE
	HIPE = query.HIPE
)

// Scan strategies.
const (
	TupleAtATime  = query.TupleAtATime
	ColumnAtATime = query.ColumnAtATime
)

// Default returns the standard experiment configuration (Table I machine,
// 16384 tuples, seed 42).
func Default() Config { return harness.Default() }

// DefaultMachine returns the paper's Table I machine configuration.
func DefaultMachine() MachineConfig { return machine.Default() }

// DefaultEnergy returns the default energy constants.
func DefaultEnergy() EnergyModel { return energy.Default() }

// DefaultQ06 returns the TPC-H Query 06 predicate parameters.
func DefaultQ06() Q06 { return db.DefaultQ06() }

// Generate builds a lineitem table with dbgen-like distributions,
// deterministically from seed. n must be a multiple of 64.
func Generate(n int, seed uint64) *Lineitem { return db.Generate(n, seed) }

// GenerateClustered builds a lineitem table whose shipdates follow the
// physical row order (an append-ordered fact table). Clustering is what
// lets HIPE's predication skip whole chunks of the later columns; see the
// ablation benches.
func GenerateClustered(n int, seed uint64, noiseDays int32) *Lineitem {
	return db.GenerateClustered(n, seed, noiseDays)
}

// Selectivity reports the fraction of t matching q.
func Selectivity(t *Lineitem, q Q06) float64 { return db.Selectivity(t, q) }

// Run executes one plan on a fresh machine, verifies the computed
// bitmask against the reference evaluator, and audits energy.
func Run(cfg Config, tab *Lineitem, p Plan) (Result, error) { return cfg.Run(tab, p) }

// Figure regenerates one panel of the paper's Figure 3 ("3a".."3d").
func Figure(cfg Config, name string) (*FigureTable, error) { return harness.Figure(cfg, name) }

// Sweep expands grid and executes every cell through the worker-pool
// engine on GOMAXPROCS workers. Grid axes left empty take defaults,
// with Tuples and Seeds inherited from cfg. Results are aggregated by
// cell index, so the outcome — including CSV/JSON exports — is
// byte-identical at any worker count.
func Sweep(cfg Config, grid Grid) (*ResultSet, error) {
	return sweep.Run(cfg, grid, sweep.Options{})
}

// SweepWith is Sweep with explicit options (worker count, per-cell
// progress callback).
func SweepWith(cfg Config, grid Grid, opt SweepOptions) (*ResultSet, error) {
	return sweep.Run(cfg, grid, opt)
}

// SweepCells executes an explicit cell list (e.g. from Grid.Expand or
// hand-built plans) through the worker pool.
func SweepCells(cfg Config, cells []Cell, opt SweepOptions) (*ResultSet, error) {
	return sweep.RunCells(cfg, cells, opt)
}

// Figures lists the reproducible panels.
func Figures() []string { return harness.Figures() }

// BestPlans returns the per-architecture best configurations compared in
// Figure 3d.
func BestPlans(q Q06) map[Arch]Plan { return harness.BestPlans(q) }
