module github.com/hipe-sim/hipe

go 1.24
